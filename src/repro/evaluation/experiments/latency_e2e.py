"""Extension experiment: end-to-end query latency by channel and scheme.

The paper's introduction motivates VisualPrint with "unpredictable
end-to-end network latency": the time from shutter to on-screen answer
is client compute + upload + server compute + response.  This driver
composes our measured client latencies (Fig. 16), payload sizes
(Fig. 14), and the channel model to the full latency distribution the
user actually experiences — per channel, for whole-frame offload versus
VisualPrint.

Shape expectation: on WiFi both schemes are compute-dominated and
comparable; on cellular, frame upload's serialization delay blows up
while VisualPrint stays compute-bound — the paper's argument that
shrinking payloads "fix[es] the network latency issue".
"""

from __future__ import annotations

import numpy as np

from repro.codecs import PngCodec
from repro.core import UniquenessOracle, VisualPrintClient, VisualPrintConfig
from repro.core.fingerprint import degradation_keep_counts
from repro.features import SiftExtractor, SiftParams
from repro.features.serialize import serialized_size
from repro.imaging import to_uint8
from repro.imaging.synth import SceneLibrary
from repro.network import CHANNEL_PRESETS, FaultSpec, FaultyChannel, RetryPolicy
from repro.network.faults import submit_payload
from repro.obs import TraceContext, use_trace_context
from repro.parallel import get_shared, parallel_map
from repro.util.rng import rng_for

__all__ = ["run", "main"]


def _make_frame_worker() -> tuple:
    """Per-chunk setup: library + a private client + a PNG codec."""
    library, oracle, config = get_shared()
    return library, VisualPrintClient(oracle, config), PngCodec()


def _measure_frame(
    frame_index: int, context: tuple
) -> tuple[int, int, int, float, TraceContext | None]:
    """One frame's (png bytes, fp bytes, fp keypoints, compute s, trace ctx)."""
    library, client, codec = context
    image = library.query_view(
        frame_index % library.num_scenes, frame_index % library.views_per_scene
    )
    fingerprint = client.process_frame(image, frame_index)
    # Per-frame stage timings come from the client's trace: the
    # "frame" root span nests one "sift" and one "oracle" child.
    frame_span = client.tracer.last_root()
    compute = (
        frame_span.child("sift").duration_seconds
        + frame_span.child("oracle").duration_seconds
    )
    return (
        len(codec.encode(to_uint8(image))),
        fingerprint.upload_bytes,
        len(fingerprint),
        compute,
        frame_span.context,
    )


def run(
    seed: int = 7,
    num_frames: int = 10,
    image_size: int = 256,
    fingerprint_size: int = 50,
    server_seconds: float = 0.05,
    workers: int = 1,
    faults: FaultSpec | None = None,
    retry: RetryPolicy | None = None,
) -> dict:
    """Returns per-channel latency samples for both offload schemes.

    ``workers`` fans the frame measurement loop across a process pool
    (payload sizes are bit-identical to serial; compute timings are
    wall-clock and vary run to run either way).  Channel jitter is
    applied in the parent, consuming its rng stream sequentially.

    With ``retry`` set, each uplink leg runs through ``faults`` (a
    fresh seeded :class:`FaultyChannel` per preset) under the retry
    policy — VisualPrint degrades its fingerprint on failures, whereas
    whole-frame offload can only retry the full frame.  The tiny
    response leg is modeled fault-free (an ack retransmits in
    negligible time); abandoned queries are excluded from the latency
    arrays and counted per channel/scheme in the ``faults`` section.
    """
    library = SceneLibrary(
        seed=seed, num_scenes=4, num_distractors=4, size=(image_size, image_size)
    )
    config = VisualPrintConfig(
        descriptor_capacity=100_000, fingerprint_size=fingerprint_size
    )
    oracle = UniquenessOracle(config)
    extractor = SiftExtractor(SiftParams(contrast_threshold=0.008))
    for scene in range(library.num_scenes):
        keypoints = extractor.extract(library.scene(scene))
        if len(keypoints):
            oracle.insert(keypoints.descriptors)

    measurements = parallel_map(
        _measure_frame,
        range(num_frames),
        workers=workers,
        shared=(library, oracle, config),
        chunk_setup=_make_frame_worker,
    )
    frame_bytes = [m[0] for m in measurements]
    fingerprint_bytes = [m[1] for m in measurements]
    fingerprint_counts = [m[2] for m in measurements]
    compute_seconds = [m[3] for m in measurements]
    trace_contexts = [m[4] for m in measurements]

    rng = rng_for(seed, "latency-e2e")
    latencies: dict[str, dict[str, np.ndarray]] = {}
    fault_counts: dict[str, dict[str, int]] = {}
    for channel_name, channel in CHANNEL_PRESETS.items():
        channel_model = (
            FaultyChannel(channel, faults) if faults is not None else channel
        )
        frame_lat = []
        vp_lat = []
        abandoned = {"frame_upload": 0, "visualprint": 0}
        for compute, frame_size, fp_size, fp_count, trace_context in zip(
            compute_seconds,
            frame_bytes,
            fingerprint_bytes,
            fingerprint_counts,
            trace_contexts,
        ):
            # Both schemes' simulated transfers join the frame's trace,
            # so each query reads as one trace_id across every channel.
            with use_trace_context(trace_context):
                if retry is None:
                    # Whole-frame offload skips local feature compute.
                    frame_lat.append(
                        channel_model.round_trip_seconds(
                            frame_size, server_seconds=server_seconds, rng=rng
                        )
                    )
                    vp_lat.append(
                        compute
                        + channel_model.round_trip_seconds(
                            fp_size, server_seconds=server_seconds, rng=rng
                        )
                    )
                    continue
                reliable = getattr(channel_model, "reliable", channel_model)
                up = submit_payload(channel_model, [frame_size], retry, rng)
                if up.delivered:
                    frame_lat.append(
                        up.latency_seconds
                        + server_seconds
                        + reliable.response_seconds(256, rng)
                    )
                else:
                    abandoned["frame_upload"] += 1
                ladder = [
                    serialized_size(count)
                    for count in degradation_keep_counts(fp_count)
                ]
                up = submit_payload(channel_model, ladder, retry, rng)
                if up.delivered:
                    vp_lat.append(
                        compute
                        + up.latency_seconds
                        + server_seconds
                        + reliable.response_seconds(256, rng)
                    )
                else:
                    abandoned["visualprint"] += 1
        latencies[channel_name] = {
            "frame_upload": np.array(frame_lat),
            "visualprint": np.array(vp_lat),
        }
        fault_counts[channel_name] = abandoned
    result = {
        "latencies": latencies,
        "mean_frame_bytes": float(np.mean(frame_bytes)),
        "mean_fingerprint_bytes": float(np.mean(fingerprint_bytes)),
        "mean_compute_seconds": float(np.mean(compute_seconds)),
    }
    if retry is not None:
        result["abandoned"] = fault_counts
    return result


def main(workers: int = 1, **overrides) -> None:
    result = run(workers=workers, **overrides)
    print("End-to-end query latency by channel (median seconds)")
    print(
        f"payloads: frame {result['mean_frame_bytes'] / 1024:.0f} KB, "
        f"fingerprint {result['mean_fingerprint_bytes'] / 1024:.1f} KB; "
        f"client compute {result['mean_compute_seconds'] * 1e3:.0f} ms"
    )
    print(f"{'channel':<8} {'frame-upload':>13} {'visualprint':>12}")
    for channel, schemes in result["latencies"].items():
        print(
            f"{channel:<8} {np.median(schemes['frame_upload']):>12.3f}s "
            f"{np.median(schemes['visualprint']):>11.3f}s"
        )


if __name__ == "__main__":
    main()
