"""Extension experiment: end-to-end query latency by channel and scheme.

The paper's introduction motivates VisualPrint with "unpredictable
end-to-end network latency": the time from shutter to on-screen answer
is client compute + upload + server compute + response.  This driver
composes our measured client latencies (Fig. 16), payload sizes
(Fig. 14), and the channel model to the full latency distribution the
user actually experiences — per channel, for whole-frame offload versus
VisualPrint.

Shape expectation: on WiFi both schemes are compute-dominated and
comparable; on cellular, frame upload's serialization delay blows up
while VisualPrint stays compute-bound — the paper's argument that
shrinking payloads "fix[es] the network latency issue".
"""

from __future__ import annotations

import numpy as np

from repro.codecs import PngCodec
from repro.core import UniquenessOracle, VisualPrintClient, VisualPrintConfig
from repro.features import SiftExtractor, SiftParams
from repro.imaging import to_uint8
from repro.imaging.synth import SceneLibrary
from repro.network import CHANNEL_PRESETS
from repro.obs import TraceContext, use_trace_context
from repro.parallel import get_shared, parallel_map
from repro.util.rng import rng_for

__all__ = ["run", "main"]


def _make_frame_worker() -> tuple:
    """Per-chunk setup: library + a private client + a PNG codec."""
    library, oracle, config = get_shared()
    return library, VisualPrintClient(oracle, config), PngCodec()


def _measure_frame(
    frame_index: int, context: tuple
) -> tuple[int, int, float, TraceContext | None]:
    """One frame's (png bytes, fingerprint bytes, compute seconds, trace ctx)."""
    library, client, codec = context
    image = library.query_view(
        frame_index % library.num_scenes, frame_index % library.views_per_scene
    )
    fingerprint = client.process_frame(image, frame_index)
    # Per-frame stage timings come from the client's trace: the
    # "frame" root span nests one "sift" and one "oracle" child.
    frame_span = client.tracer.last_root()
    compute = (
        frame_span.child("sift").duration_seconds
        + frame_span.child("oracle").duration_seconds
    )
    return (
        len(codec.encode(to_uint8(image))),
        fingerprint.upload_bytes,
        compute,
        frame_span.context,
    )


def run(
    seed: int = 7,
    num_frames: int = 10,
    image_size: int = 256,
    fingerprint_size: int = 50,
    server_seconds: float = 0.05,
    workers: int = 1,
) -> dict:
    """Returns per-channel latency samples for both offload schemes.

    ``workers`` fans the frame measurement loop across a process pool
    (payload sizes are bit-identical to serial; compute timings are
    wall-clock and vary run to run either way).  Channel jitter is
    applied in the parent, consuming its rng stream sequentially.
    """
    library = SceneLibrary(
        seed=seed, num_scenes=4, num_distractors=4, size=(image_size, image_size)
    )
    config = VisualPrintConfig(
        descriptor_capacity=100_000, fingerprint_size=fingerprint_size
    )
    oracle = UniquenessOracle(config)
    extractor = SiftExtractor(SiftParams(contrast_threshold=0.008))
    for scene in range(library.num_scenes):
        keypoints = extractor.extract(library.scene(scene))
        if len(keypoints):
            oracle.insert(keypoints.descriptors)

    measurements = parallel_map(
        _measure_frame,
        range(num_frames),
        workers=workers,
        shared=(library, oracle, config),
        chunk_setup=_make_frame_worker,
    )
    frame_bytes = [m[0] for m in measurements]
    fingerprint_bytes = [m[1] for m in measurements]
    compute_seconds = [m[2] for m in measurements]
    trace_contexts = [m[3] for m in measurements]

    rng = rng_for(seed, "latency-e2e")
    latencies: dict[str, dict[str, np.ndarray]] = {}
    for channel_name, channel in CHANNEL_PRESETS.items():
        frame_lat = []
        vp_lat = []
        for compute, frame_size, fp_size, trace_context in zip(
            compute_seconds, frame_bytes, fingerprint_bytes, trace_contexts
        ):
            # Both schemes' simulated transfers join the frame's trace,
            # so each query reads as one trace_id across every channel.
            with use_trace_context(trace_context):
                # Whole-frame offload skips local feature compute entirely.
                frame_lat.append(
                    channel.round_trip_seconds(
                        frame_size, server_seconds=server_seconds, rng=rng
                    )
                )
                vp_lat.append(
                    compute
                    + channel.round_trip_seconds(
                        fp_size, server_seconds=server_seconds, rng=rng
                    )
                )
        latencies[channel_name] = {
            "frame_upload": np.array(frame_lat),
            "visualprint": np.array(vp_lat),
        }
    return {
        "latencies": latencies,
        "mean_frame_bytes": float(np.mean(frame_bytes)),
        "mean_fingerprint_bytes": float(np.mean(fingerprint_bytes)),
        "mean_compute_seconds": float(np.mean(compute_seconds)),
    }


def main(workers: int = 1, **overrides) -> None:
    result = run(workers=workers, **overrides)
    print("End-to-end query latency by channel (median seconds)")
    print(
        f"payloads: frame {result['mean_frame_bytes'] / 1024:.0f} KB, "
        f"fingerprint {result['mean_fingerprint_bytes'] / 1024:.1f} KB; "
        f"client compute {result['mean_compute_seconds'] * 1e3:.0f} ms"
    )
    print(f"{'channel':<8} {'frame-upload':>13} {'visualprint':>12}")
    for channel, schemes in result["latencies"].items():
        print(
            f"{channel:<8} {np.median(schemes['frame_upload']):>12.3f}s "
            f"{np.median(schemes['visualprint']):>11.3f}s"
        )


if __name__ == "__main__":
    main()
