"""Figure 18: average power by configuration over a 70 s run.

Expected shape: display ~1 W; display+camera ~3.5 W; full VisualPrint
~6.5 W with camera+compute dominating; whole-frame offload ~4.9 W (no
local compute, but a radio that is almost always transmitting).
"""

from __future__ import annotations

import numpy as np

from repro.energy import PowerModel, sample_trace

__all__ = ["run", "main"]


def run(
    duration_seconds: float = 70.0,
    sample_rate_hz: float = 1000.0,
    seed: int = 0,
) -> dict:
    """Returns per-configuration power traces and averages."""
    model = PowerModel()
    profiles = PowerModel.figure18_profiles()
    rng = np.random.default_rng(seed)
    traces = {
        name: sample_trace(
            profile,
            duration_seconds,
            model=model,
            sample_rate_hz=sample_rate_hz,
            rng=rng,
        )
        for name, profile in profiles.items()
    }
    averages = {name: trace.average_watts for name, trace in traces.items()}
    full = profiles["visualprint_full"]
    camera_compute = (
        model.watts["camera"]
        + full.compute_sift_duty * model.watts["compute_sift"]
        + full.compute_oracle_duty * model.watts["compute_oracle"]
    )
    return {
        "traces": traces,
        "averages": averages,
        "camera_compute_fraction": camera_compute / averages["visualprint_full"],
    }


def main() -> None:
    result = run()
    print("Figure 18: average power by configuration (70 s run)")
    for name, watts in result["averages"].items():
        print(f"{name:<22} {watts:>5.2f} W")
    print(
        f"camera+compute fraction of full pipeline: "
        f"{result['camera_compute_fraction']:.0%} "
        "(paper: camera + SIFT dominate)"
    )


if __name__ == "__main__":
    main()
