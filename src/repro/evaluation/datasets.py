"""Retrieval workload construction (the paper's CSL dataset, synthetic).

"We photographed 100 non-overlapping scenes ... We also capture 400
additional distractor images ... The query database consists of five
additional photographs of each scene ... from substantially different
angles."  :func:`build_workload` reproduces that structure from
:class:`repro.imaging.SceneLibrary` and extracts SIFT keypoints for
every image.

Extraction over hundreds of images takes minutes, so workloads cache to
``.cache/`` as ``.npz`` keyed by their parameters; delete the directory
to force regeneration.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.features import KeypointSet, SiftExtractor, SiftParams
from repro.imaging.synth import SceneLibrary
from repro.parallel import get_shared, parallel_map

__all__ = ["RetrievalWorkload", "build_workload"]

DISTRACTOR_LABEL = -1


@dataclass
class RetrievalWorkload:
    """Database + query keypoints for the Fig. 13 experiments."""

    database_keypoints: list[KeypointSet]
    database_labels: list[int]  # scene id, or -1 for distractors
    query_keypoints: list[KeypointSet]
    query_labels: list[int]  # true scene id per query
    num_scenes: int

    @property
    def num_database_images(self) -> int:
        return len(self.database_keypoints)

    @property
    def num_queries(self) -> int:
        return len(self.query_keypoints)

    @property
    def num_database_descriptors(self) -> int:
        return sum(len(k) for k in self.database_keypoints)

    def mean_query_keypoints(self) -> float:
        if not self.query_keypoints:
            return 0.0
        return float(np.mean([len(k) for k in self.query_keypoints]))


def _cache_key(**params: object) -> str:
    canonical = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def _keypoints_to_arrays(keypoints: KeypointSet) -> dict[str, np.ndarray]:
    return {
        "positions": keypoints.positions,
        "scales": keypoints.scales,
        "orientations": keypoints.orientations,
        "responses": keypoints.responses,
        "descriptors": keypoints.descriptors,
    }


def _save_workload(path: Path, workload: RetrievalWorkload) -> None:
    arrays: dict[str, np.ndarray] = {
        "database_labels": np.array(workload.database_labels, dtype=np.int64),
        "query_labels": np.array(workload.query_labels, dtype=np.int64),
        "num_scenes": np.array([workload.num_scenes]),
    }
    for prefix, sets in (
        ("db", workload.database_keypoints),
        ("q", workload.query_keypoints),
    ):
        arrays[f"{prefix}_counts"] = np.array([len(k) for k in sets], dtype=np.int64)
        for name, stacked in _keypoints_to_arrays(
            KeypointSet.concatenate(sets)
        ).items():
            arrays[f"{prefix}_{name}"] = stacked
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)


def _split_keypoints(
    data: np.lib.npyio.NpzFile, prefix: str
) -> list[KeypointSet]:
    counts = data[f"{prefix}_counts"]
    boundaries = np.cumsum(counts)[:-1]
    fields = {
        name: np.split(data[f"{prefix}_{name}"], boundaries)
        for name in ("positions", "scales", "orientations", "responses", "descriptors")
    }
    return [
        KeypointSet(
            positions=fields["positions"][i],
            scales=fields["scales"][i],
            orientations=fields["orientations"][i],
            responses=fields["responses"][i],
            descriptors=fields["descriptors"][i],
        )
        for i in range(len(counts))
    ]


def _load_workload(path: Path) -> RetrievalWorkload:
    with np.load(path) as data:
        return RetrievalWorkload(
            database_keypoints=_split_keypoints(data, "db"),
            database_labels=[int(v) for v in data["database_labels"]],
            query_keypoints=_split_keypoints(data, "q"),
            query_labels=[int(v) for v in data["query_labels"]],
            num_scenes=int(data["num_scenes"][0]),
        )


def _extract_task(task: tuple) -> KeypointSet:
    """Render one image and extract its keypoints (pool worker body).

    Rendering happens inside the worker: :class:`SceneLibrary` draws
    every image from a named per-index RNG stream, so each task is a
    pure function of ``(library params, task)`` and the output is
    bit-identical regardless of which worker runs it.
    """
    library, extractor = get_shared()
    kind = task[0]
    if kind == "scene":
        image = library.scene(task[1])
    elif kind == "distractor":
        image = library.distractor(task[1])
    else:  # ("query", scene_index, view_index)
        image = library.query_view(task[1], task[2])
    return extractor.extract(image)


def build_workload(
    seed: int = 7,
    num_scenes: int = 100,
    num_distractors: int = 400,
    views_per_scene: int = 5,
    image_size: int = 384,
    contrast_threshold: float = 0.008,
    cache_dir: str | Path | None = ".cache",
    verbose: bool = False,
    workers: int = 1,
) -> RetrievalWorkload:
    """Build (or load from cache) the retrieval workload.

    ``workers > 1`` renders and extracts the images across a process
    pool (:func:`repro.parallel.parallel_map`).  ``workers`` is not part
    of the cache key: the parallel build is bit-identical to the serial
    one, so both populate and hit the same ``.npz`` entry.
    """
    params = dict(
        seed=seed,
        num_scenes=num_scenes,
        num_distractors=num_distractors,
        views_per_scene=views_per_scene,
        image_size=image_size,
        contrast_threshold=contrast_threshold,
        version=2,  # bump when generation logic changes
    )
    cache_path = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / f"workload_{_cache_key(**params)}.npz"
        if cache_path.exists():
            return _load_workload(cache_path)

    library = SceneLibrary(
        seed=seed,
        num_scenes=num_scenes,
        num_distractors=num_distractors,
        size=(image_size, image_size),
        views_per_scene=views_per_scene,
    )
    extractor = SiftExtractor(SiftParams(contrast_threshold=contrast_threshold))

    database_tasks: list[tuple] = [
        ("scene", index) for index in range(num_scenes)
    ] + [("distractor", index) for index in range(num_distractors)]
    query_tasks: list[tuple] = [
        ("query", scene, view)
        for scene in range(num_scenes)
        for view in range(views_per_scene)
    ]
    if verbose:
        print(
            f"  extracting {len(database_tasks)} database + "
            f"{len(query_tasks)} query images (workers={workers})"
        )
    extracted = parallel_map(
        _extract_task,
        database_tasks + query_tasks,
        workers=workers,
        shared=(library, extractor),
    )
    database_keypoints = extracted[: len(database_tasks)]
    query_keypoints = extracted[len(database_tasks) :]
    database_labels = [
        index if kind == "scene" else DISTRACTOR_LABEL
        for kind, index in database_tasks
    ]
    query_labels = [scene for _, scene, _ in query_tasks]

    workload = RetrievalWorkload(
        database_keypoints=database_keypoints,
        database_labels=database_labels,
        query_keypoints=query_keypoints,
        query_labels=query_labels,
        num_scenes=num_scenes,
    )
    if cache_path is not None:
        _save_workload(cache_path, workload)
    return workload
