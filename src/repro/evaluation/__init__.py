"""Evaluation harness: workloads, metrics, and one driver per figure.

``repro.evaluation.experiments`` contains a module per paper artifact
(fig2 ... fig20, takeaways); each exposes ``run(...) -> dict`` returning
the figure's series/rows and a ``main()`` that prints them.  The
benchmarks in ``benchmarks/`` call these drivers.
"""

from repro.evaluation.datasets import RetrievalWorkload, build_workload
from repro.evaluation.retrieval import (
    evaluate_scheme_cdfs,
    run_bruteforce,
    run_lsh,
    run_random,
    run_visualprint,
)

__all__ = [
    "RetrievalWorkload",
    "build_workload",
    "evaluate_scheme_cdfs",
    "run_bruteforce",
    "run_lsh",
    "run_random",
    "run_visualprint",
]
