"""Descriptor-dimension statistics (Fig. 6).

(a) For each query descriptor matched to its database nearest neighbor,
sort the per-dimension squared differences descending: a handful of
dimensions carry most of the Euclidean distance — the observation that
justifies projecting into a low-dimensional LSH space.

(b) PCA of the descriptor population: "only a few PCA dimensions (far
less than 128) are enough to account for the majority of covariance."
"""

from __future__ import annotations

import numpy as np

from repro.matching.bruteforce import BruteForceMatcher

__all__ = [
    "nearest_neighbor_dimension_profile",
    "pca_eigenvalue_spectrum",
    "dimensions_for_variance",
]


def nearest_neighbor_dimension_profile(
    queries: np.ndarray, database: np.ndarray, sample: int | None = 2000
) -> np.ndarray:
    """Sorted per-dimension squared NN differences, shape ``(n, 128)``.

    Row ``i`` is ``sort_descending((query_i - nn_i)^2)`` — the Fig. 6a
    boxplot input (one boxplot per sorted rank).
    """
    queries = np.asarray(queries, dtype=np.float64)
    database = np.asarray(database, dtype=np.float32)
    if sample is not None and queries.shape[0] > sample:
        step = queries.shape[0] // sample
        queries = queries[::step][:sample]
    matcher = BruteForceMatcher(database)
    indices, _ = matcher.knn(queries.astype(np.float32), k=1)
    matched = database[indices[:, 0]].astype(np.float64)
    squared = (queries - matched) ** 2
    return -np.sort(-squared, axis=1)


def pca_eigenvalue_spectrum(descriptors: np.ndarray) -> np.ndarray:
    """Normalized covariance eigenvalues, descending (Fig. 6b)."""
    descriptors = np.asarray(descriptors, dtype=np.float64)
    if descriptors.shape[0] < 2:
        raise ValueError("need at least two descriptors for PCA")
    centered = descriptors - descriptors.mean(axis=0)
    covariance = centered.T @ centered / (descriptors.shape[0] - 1)
    eigenvalues = np.linalg.eigvalsh(covariance)[::-1]
    eigenvalues = np.maximum(eigenvalues, 0.0)
    total = eigenvalues.sum()
    if total <= 0:
        raise ValueError("degenerate descriptor population")
    return eigenvalues / total


def dimensions_for_variance(
    normalized_eigenvalues: np.ndarray, fraction: float = 0.9
) -> int:
    """How many PCA dimensions cover ``fraction`` of the variance."""
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    cumulative = np.cumsum(normalized_eigenvalues)
    return int(np.searchsorted(cumulative, fraction) + 1)
