"""Running the five Fig. 13 regimes over a retrieval workload.

All subselection schemes (Random, VisualPrint-k, LSH-with-all-keypoints)
share the server-side E2LSH matcher; BruteForce uses exact NN.  Matched
keypoints vote for the scene owning their database counterpart through
the common predictor in :mod:`repro.matching.schemes`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import VisualPrintConfig
from repro.core.oracle import UniquenessOracle
from repro.evaluation.datasets import RetrievalWorkload
from repro.matching import (
    BruteForceMatcher,
    LshMatcher,
    SceneDatabase,
    SchemeResult,
    random_subselect,
    vote_scene,
)
from repro.util.rng import rng_for

__all__ = [
    "build_scene_database",
    "build_oracle",
    "evaluate_scheme_cdfs",
    "run_bruteforce",
    "run_lsh",
    "run_random",
    "run_visualprint",
]


def build_scene_database(workload: RetrievalWorkload) -> SceneDatabase:
    return SceneDatabase.from_keypoint_sets(
        workload.database_keypoints, workload.database_labels
    )


def build_oracle(
    workload: RetrievalWorkload, config: VisualPrintConfig | None = None
) -> UniquenessOracle:
    """Curate the uniqueness oracle from the full database."""
    database = build_scene_database(workload)
    config = config or VisualPrintConfig(
        descriptor_capacity=max(database.size, 1024)
    )
    oracle = UniquenessOracle(config)
    oracle.insert(database.descriptors)
    return oracle


def _predict_all(
    scheme: str,
    workload: RetrievalWorkload,
    database: SceneDatabase,
    matcher,
    select,
    ratio: float,
    min_votes: int,
) -> SchemeResult:
    predictions = np.empty(workload.num_queries, dtype=np.int64)
    uploaded = np.empty(workload.num_queries, dtype=np.int64)
    for query_index, keypoints in enumerate(workload.query_keypoints):
        selected = select(query_index, keypoints)
        uploaded[query_index] = len(selected)
        if len(selected) == 0:
            predictions[query_index] = -1
            continue
        _, database_rows = matcher.match(selected.descriptors, ratio=ratio)
        outcome = vote_scene(database.labels[database_rows], min_votes=min_votes)
        predictions[query_index] = outcome.predicted_scene
    return SchemeResult(
        scheme=scheme,
        true_scenes=np.array(workload.query_labels, dtype=np.int64),
        predicted_scenes=predictions,
        uploaded_keypoints=uploaded,
    )


def run_random(
    workload: RetrievalWorkload,
    database: SceneDatabase,
    matcher: LshMatcher,
    count: int = 500,
    seed: int = 0,
    ratio: float = 0.8,
    min_votes: int = 8,
) -> SchemeResult:
    """Random-k: uniform subselection, server LSH matching."""
    rng = rng_for(seed, "random-select")
    return _predict_all(
        f"Random-{count}",
        workload,
        database,
        matcher,
        lambda _, kp: random_subselect(kp, count, rng),
        ratio,
        min_votes,
    )


def run_visualprint(
    workload: RetrievalWorkload,
    database: SceneDatabase,
    matcher: LshMatcher,
    oracle: UniquenessOracle,
    count: int = 200,
    ratio: float = 0.8,
    min_votes: int = 8,
) -> SchemeResult:
    """VisualPrint-k: oracle-ranked top-k, server LSH matching."""

    def select(_: int, keypoints):
        order = oracle.rank_by_uniqueness(keypoints.descriptors)
        return keypoints.select(order[:count])

    return _predict_all(
        f"VisualPrint-{count}", workload, database, matcher, select, ratio, min_votes
    )


def run_lsh(
    workload: RetrievalWorkload,
    database: SceneDatabase,
    matcher: LshMatcher,
    ratio: float = 0.8,
    min_votes: int = 8,
) -> SchemeResult:
    """LSH: all query keypoints through the approximate matcher."""
    return _predict_all(
        "LSH", workload, database, matcher, lambda _, kp: kp, ratio, min_votes
    )


def run_bruteforce(
    workload: RetrievalWorkload,
    database: SceneDatabase,
    matcher: BruteForceMatcher | None = None,
    ratio: float = 0.8,
    min_votes: int = 8,
) -> SchemeResult:
    """BruteForce: all query keypoints through exact NN."""
    matcher = matcher or BruteForceMatcher(database.descriptors)
    return _predict_all(
        "BruteForce", workload, database, matcher, lambda _, kp: kp, ratio, min_votes
    )


def evaluate_scheme_cdfs(
    results: list[SchemeResult], database: SceneDatabase
) -> dict[str, dict[str, np.ndarray]]:
    """Per-scene precision/recall values per scheme (Fig. 13's CDF input)."""
    scene_ids = database.scene_ids
    out: dict[str, dict[str, np.ndarray]] = {}
    for result in results:
        precision, recall = result.precision_recall_per_scene(scene_ids)
        out[result.scheme] = {"precision": precision, "recall": recall}
    return out
