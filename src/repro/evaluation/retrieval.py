"""Running the five Fig. 13 regimes over a retrieval workload.

All subselection schemes (Random, VisualPrint-k, LSH-with-all-keypoints)
share the server-side E2LSH matcher; BruteForce uses exact NN.  Matched
keypoints vote for the scene owning their database counterpart through
the common predictor in :mod:`repro.matching.schemes`.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import VisualPrintConfig
from repro.core.oracle import UniquenessOracle
from repro.evaluation.datasets import RetrievalWorkload
from repro.matching import (
    BruteForceMatcher,
    LshMatcher,
    SceneDatabase,
    SchemeResult,
    random_subselect,
    vote_scene,
)
from repro.obs import trace_span
from repro.parallel import get_shared, parallel_map
from repro.util.rng import rng_for

__all__ = [
    "RetrievalSchemeEngine",
    "build_scene_database",
    "build_oracle",
    "evaluate_scheme_cdfs",
    "run_bruteforce",
    "run_lsh",
    "run_random",
    "run_visualprint",
]


def build_scene_database(workload: RetrievalWorkload) -> SceneDatabase:
    return SceneDatabase.from_keypoint_sets(
        workload.database_keypoints, workload.database_labels
    )


def build_oracle(
    workload: RetrievalWorkload,
    config: VisualPrintConfig | None = None,
    workers: int = 1,
) -> UniquenessOracle:
    """Curate the uniqueness oracle from the full database."""
    database = build_scene_database(workload)
    config = config or VisualPrintConfig(
        descriptor_capacity=max(database.size, 1024)
    )
    oracle = UniquenessOracle(config)
    oracle.insert(database.descriptors, workers=workers)
    return oracle


class _SelectAll:
    """Upload every extracted keypoint (LSH / BruteForce regimes)."""

    def __call__(self, query_index: int, keypoints):
        return keypoints


class _RandomSelector:
    """Uniform-k subselection with a private RNG stream per query.

    Each query draws from ``rng_for(seed, "random-select/<index>")``
    rather than one shared sequential generator, so the selection for
    query ``i`` is independent of which worker runs it and of how many
    queries ran before it — the property the parallel fan-out relies on.
    """

    def __init__(self, count: int, seed: int) -> None:
        self.count = count
        self.seed = seed

    def __call__(self, query_index: int, keypoints):
        rng = rng_for(self.seed, f"random-select/{query_index}")
        return random_subselect(keypoints, self.count, rng)


class _UniquenessSelector:
    """Oracle-ranked top-k subselection (the VisualPrint regime)."""

    def __init__(self, oracle: UniquenessOracle, count: int) -> None:
        self.oracle = oracle
        self.count = count

    def __call__(self, query_index: int, keypoints):
        order = self.oracle.rank_by_uniqueness(keypoints.descriptors)
        return keypoints.select(order[: self.count])


def _predict_with(context, query_index: int) -> tuple[int, int]:
    """Match one query against the scene database (the shared hot path).

    ``context`` is the 7-tuple a scheme run shares with its executors
    (queries, labels, matcher, selector, ratio, min_votes, scheme).
    Each query runs under a "query" root span (labeled with scheme and
    index) so retrieval runs yield per-query traces; any spans opened
    while it is active (e.g. ``oracle.lookup_batch``) nest underneath
    automatically.
    """
    queries, labels, matcher, select, ratio, min_votes, scheme = context
    keypoints = queries[query_index]
    with trace_span("query", query_index=query_index, scheme=scheme) as span:
        selected = select(query_index, keypoints)
        span.set("selected", len(selected))
        if len(selected) == 0:
            return -1, 0
        _, database_rows = matcher.match(selected.descriptors, ratio=ratio)
        outcome = vote_scene(labels[database_rows], min_votes=min_votes)
    return int(outcome.predicted_scene), len(selected)


def _predict_one(query_index: int) -> tuple[int, int]:
    """Pool-worker body: read the shared context, run the hot path."""
    return _predict_with(get_shared(), query_index)


class RetrievalSchemeEngine:
    """One scheme's query path as a serving-layer venue engine.

    ``serve(query_index)`` answers exactly what :func:`_predict_one`
    computes in a pool worker, so a fig13 run routed through a
    :class:`repro.serving.ServingFrontend` (inline workers) is
    bit-identical to the ``parallel_map`` path — same selector RNG
    streams, same spans, same registry records.
    """

    def __init__(self, context) -> None:
        self._context = context

    def serve(self, query_index: int) -> tuple[int, int]:
        return _predict_with(self._context, query_index)


def _predict_all(
    scheme: str,
    workload: RetrievalWorkload,
    database: SceneDatabase,
    matcher,
    select,
    ratio: float,
    min_votes: int,
    workers: int = 1,
    frontend=None,
) -> SchemeResult:
    context = (
        workload.query_keypoints,
        database.labels,
        matcher,
        select,
        ratio,
        min_votes,
        scheme,
    )
    if frontend is not None:
        venue = f"fig13/{scheme}"
        frontend.register_venue(venue, RetrievalSchemeEngine(context))
        outcomes = frontend.map(venue, range(workload.num_queries))
    else:
        outcomes = parallel_map(
            _predict_one,
            range(workload.num_queries),
            workers=workers,
            shared=context,
        )
    predictions = np.array([p for p, _ in outcomes], dtype=np.int64)
    uploaded = np.array([u for _, u in outcomes], dtype=np.int64)
    return SchemeResult(
        scheme=scheme,
        true_scenes=np.array(workload.query_labels, dtype=np.int64),
        predicted_scenes=predictions,
        uploaded_keypoints=uploaded,
    )


def run_random(
    workload: RetrievalWorkload,
    database: SceneDatabase,
    matcher: LshMatcher,
    count: int = 500,
    seed: int = 0,
    ratio: float = 0.8,
    min_votes: int = 8,
    workers: int = 1,
    frontend=None,
) -> SchemeResult:
    """Random-k: uniform subselection, server LSH matching."""
    return _predict_all(
        f"Random-{count}",
        workload,
        database,
        matcher,
        _RandomSelector(count, seed),
        ratio,
        min_votes,
        workers=workers,
        frontend=frontend,
    )


def run_visualprint(
    workload: RetrievalWorkload,
    database: SceneDatabase,
    matcher: LshMatcher,
    oracle: UniquenessOracle,
    count: int = 200,
    ratio: float = 0.8,
    min_votes: int = 8,
    workers: int = 1,
    frontend=None,
) -> SchemeResult:
    """VisualPrint-k: oracle-ranked top-k, server LSH matching."""
    return _predict_all(
        f"VisualPrint-{count}",
        workload,
        database,
        matcher,
        _UniquenessSelector(oracle, count),
        ratio,
        min_votes,
        workers=workers,
        frontend=frontend,
    )


def run_lsh(
    workload: RetrievalWorkload,
    database: SceneDatabase,
    matcher: LshMatcher,
    ratio: float = 0.8,
    min_votes: int = 8,
    workers: int = 1,
    frontend=None,
) -> SchemeResult:
    """LSH: all query keypoints through the approximate matcher."""
    return _predict_all(
        "LSH",
        workload,
        database,
        matcher,
        _SelectAll(),
        ratio,
        min_votes,
        workers=workers,
        frontend=frontend,
    )


def run_bruteforce(
    workload: RetrievalWorkload,
    database: SceneDatabase,
    matcher: BruteForceMatcher | None = None,
    ratio: float = 0.8,
    min_votes: int = 8,
    workers: int = 1,
    frontend=None,
) -> SchemeResult:
    """BruteForce: all query keypoints through exact NN."""
    matcher = matcher or BruteForceMatcher(database.descriptors)
    return _predict_all(
        "BruteForce",
        workload,
        database,
        matcher,
        _SelectAll(),
        ratio,
        min_votes,
        workers=workers,
        frontend=frontend,
    )


def evaluate_scheme_cdfs(
    results: list[SchemeResult], database: SceneDatabase
) -> dict[str, dict[str, np.ndarray]]:
    """Per-scene precision/recall values per scheme (Fig. 13's CDF input)."""
    scene_ids = database.scene_ids
    out: dict[str, dict[str, np.ndarray]] = {}
    for result in results:
        precision, recall = result.precision_recall_per_scene(scene_ids)
        out[result.scheme] = {"precision": precision, "recall": recall}
    return out
