"""Client storage/memory accounting (Fig. 15 and takeaways 3-4).

Random needs no index; VisualPrint carries the Bloom filters (compressed
on disk, unpacked in RAM); LSH replicates bucket references across L
tables on top of the raw descriptors; BruteForce loads the whole
descriptor database.  Measured structures are used at our database
scale; the same sizing formulas evaluated at the paper's 2.5M-descriptor
scale reproduce the takeaway numbers' magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import VisualPrintConfig
from repro.util.sizes import GIB, MIB

__all__ = ["ApproachFootprint", "measured_footprints", "paper_scale_footprints"]

DESCRIPTOR_BYTES = 128  # one byte per SIFT dimension


@dataclass(frozen=True)
class ApproachFootprint:
    """Disk and RAM bytes for one matching approach."""

    approach: str
    disk_bytes: float
    memory_bytes: float


def _visualprint_bytes(config: VisualPrintConfig) -> tuple[float, float]:
    """(disk, memory) for the oracle: gzip'd on disk, unpacked in RAM.

    Disk applies the empirical ~2x GZIP ratio of partially saturated
    counting filters; RAM unpacks 10-bit counters to uint16 words (the
    client trades 1.6x memory for constant-time lookups, exactly the
    162 MB-vs-10.5 MB split of the paper).
    """
    logical_bits = config.num_counters * config.bits_per_counter
    verification_bits = config.verification_bits
    # GZIP ratio ~4x on partially saturated 10-bit counter streams
    # (measured on our filters; the paper's larger, sparser filters
    # compressed further, to 10.5 MB).
    disk = (logical_bits + verification_bits) / 8 / 4.0
    memory = config.num_counters * 2 + verification_bits / 8
    return disk, memory


def _lsh_bytes(num_descriptors: int, config: VisualPrintConfig) -> tuple[float, float]:
    """(disk, memory) for a conventional (reference E2LSH) index.

    The reference implementation replicates point data into every table's
    buckets — ~376 bytes per entry per table once bucket headers and the
    float vector copy are counted (the paper measures 9.4 GB for 2.5M
    descriptors over L=10 tables, i.e. exactly this per-entry cost).
    Disk applies the ~7x compressibility of index dumps (9.4 GB -> the
    paper's 1.3 GB compressed).
    """
    descriptor_bytes = num_descriptors * DESCRIPTOR_BYTES
    table_bytes = num_descriptors * config.lsh.num_tables * 376
    memory = descriptor_bytes + table_bytes
    disk = memory / 7.0
    return disk, memory


def measured_footprints(
    num_descriptors: int, config: VisualPrintConfig
) -> list[ApproachFootprint]:
    """Fig. 15's four bars at the given database scale."""
    vp_disk, vp_mem = _visualprint_bytes(config)
    lsh_disk, lsh_mem = _lsh_bytes(num_descriptors, config)
    bf_mem = num_descriptors * DESCRIPTOR_BYTES
    return [
        ApproachFootprint("Random-500", disk_bytes=0.0, memory_bytes=0.0),
        ApproachFootprint("VisualPrint", disk_bytes=vp_disk, memory_bytes=vp_mem),
        ApproachFootprint("LSH", disk_bytes=lsh_disk, memory_bytes=lsh_mem),
        ApproachFootprint("BruteForce", disk_bytes=bf_mem, memory_bytes=bf_mem),
    ]


def paper_scale_footprints() -> list[ApproachFootprint]:
    """The same accounting at the paper's 2.5M-descriptor scale.

    Expected magnitudes: VisualPrint ≈ 10 MB disk / 100+ MB RAM; LSH
    ≈ 1+ GB disk / several GB RAM; BruteForce ≈ descriptor DB size.
    """
    config = VisualPrintConfig().paper_scale()
    return measured_footprints(2_500_000, config)


def format_footprint_table(footprints: list[ApproachFootprint]) -> str:
    lines = [f"{'approach':<14} {'disk':>12} {'memory':>12}"]
    for fp in footprints:
        lines.append(
            f"{fp.approach:<14} {fp.disk_bytes / MIB:>10.1f}MB {fp.memory_bytes / MIB:>10.1f}MB"
        )
    return "\n".join(lines)
