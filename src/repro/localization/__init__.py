"""Client localization from a fingerprint's matched 3D points.

"VisualPrint applies spatial clustering to filter down to only those 3D
points in the largest cluster" (outlier rejection), then solves the
Fig. 12 nonlinear program: find the camera position whose perceived
inter-keypoint angles best agree with the matched 3D geometry, "using a
time-bounded differential evolution".
"""

from repro.localization.clustering import largest_cluster, dbscan_labels
from repro.localization.metrics import error_by_axis, localization_errors
from repro.localization.solver import (
    AngularLocalizer,
    LocalizationProblem,
    LocalizationSolution,
)

__all__ = [
    "AngularLocalizer",
    "LocalizationProblem",
    "LocalizationSolution",
    "dbscan_labels",
    "error_by_axis",
    "largest_cluster",
    "localization_errors",
]
