"""Localization error accounting for Figs. 19 and 20."""

from __future__ import annotations

import numpy as np

from repro.geometry.pose import Pose

__all__ = ["localization_errors", "error_by_axis"]


def localization_errors(
    estimated: list[Pose], truth: list[Pose]
) -> np.ndarray:
    """3D position error per query (Fig. 19's CDF input), meters."""
    if len(estimated) != len(truth):
        raise ValueError("estimated and truth pose lists must align")
    return np.array(
        [est.position_error(ref) for est, ref in zip(estimated, truth)]
    )


def error_by_axis(
    estimated: list[Pose], truth: list[Pose]
) -> dict[str, np.ndarray]:
    """Absolute per-axis errors (Fig. 20's boxplot input)."""
    if len(estimated) != len(truth):
        raise ValueError("estimated and truth pose lists must align")
    deltas = np.array(
        [np.abs(est.position - ref.position) for est, ref in zip(estimated, truth)]
    )
    if deltas.size == 0:
        deltas = np.empty((0, 3))
    return {"x": deltas[:, 0], "y": deltas[:, 1], "z": deltas[:, 2]}
