"""Angular-constraint camera localization (the paper's Fig. 12 program).

The observation model: for any two matched keypoints *i, j*, the angle
at the camera between their viewing rays is fixed by their pixel
coordinates and the camera FoV alone (no pose needed) — Fig. 11's
``gamma`` geometry.  The unknown camera position ``A = (x, y, z)`` must
make the angles subtended by the keypoints' known 3D positions agree
with those perceived angles.  The paper decomposes angles into X/Z and
Y/Z components and minimizes summed residuals ``Ex_ij + Ey_ij`` via the
law of cosines; we use the equivalent decomposition-free form — the full
3D angle between rays, ``acos`` of the ray dot product — which carries
the same constraints without per-axis bookkeeping and is
rotation-invariant, so position solves without knowing orientation.

Following the paper we solve with "a time-bounded differential
evolution" (bounded by the venue extents), then polish with robust least
squares.  Orientation is recovered afterwards by Kabsch alignment of the
camera-frame ray directions with the world-frame directions to the
matched points — yielding the full 6-DoF pose.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.geometry.camera import CameraIntrinsics
from repro.geometry.pose import Pose

__all__ = ["AngularLocalizer", "LocalizationProblem", "LocalizationSolution"]


@dataclass(frozen=True)
class LocalizationProblem:
    """One query: matched 2D pixels with their retrieved 3D positions."""

    pixels: np.ndarray  # (n, 2)
    world_points: np.ndarray  # (n, 3)
    intrinsics: CameraIntrinsics
    bounds_low: np.ndarray  # (3,) venue bounding box
    bounds_high: np.ndarray

    def __post_init__(self) -> None:
        if self.pixels.shape[0] != self.world_points.shape[0]:
            raise ValueError("pixels and world points must align")

    @property
    def num_points(self) -> int:
        return int(self.pixels.shape[0])


@dataclass(frozen=True)
class LocalizationSolution:
    """Estimated 6-DoF pose plus solver diagnostics."""

    pose: Pose
    residual: float  # RMS angular residual, radians
    num_pairs: int
    converged: bool


def _ray_directions(pixels: np.ndarray, intrinsics: CameraIntrinsics) -> np.ndarray:
    """Unit camera-frame ray directions for pixels (+X forward)."""
    cx, cy = intrinsics.center
    dir_y = -(pixels[:, 0] - cx) / intrinsics.focal_x
    dir_z = -(pixels[:, 1] - cy) / intrinsics.focal_y
    rays = np.column_stack([np.ones(pixels.shape[0]), dir_y, dir_z])
    return rays / np.linalg.norm(rays, axis=1, keepdims=True)


class AngularLocalizer:
    """Solves :class:`LocalizationProblem` instances."""

    def __init__(
        self,
        max_pairs: int = 80,
        de_max_iterations: int = 40,
        de_population: int = 20,
        seed: int = 0,
    ) -> None:
        if max_pairs < 1:
            raise ValueError(f"max_pairs must be >= 1, got {max_pairs}")
        self.max_pairs = int(max_pairs)
        self.de_max_iterations = int(de_max_iterations)
        self.de_population = int(de_population)
        self.seed = int(seed)

    def _select_pairs(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Keypoint index pairs (i < j), subsampled to the pair budget."""
        pairs = np.array(
            [(i, j) for i in range(count) for j in range(i + 1, count)],
            dtype=np.int64,
        )
        if pairs.shape[0] > self.max_pairs:
            chosen = rng.choice(pairs.shape[0], size=self.max_pairs, replace=False)
            pairs = pairs[np.sort(chosen)]
        return pairs

    def solve(self, problem: LocalizationProblem) -> LocalizationSolution:
        """Estimate the camera pose for one query."""
        if problem.num_points < 3:
            center = (problem.bounds_low + problem.bounds_high) / 2.0
            return LocalizationSolution(
                pose=Pose(x=center[0], y=center[1], z=center[2]),
                residual=np.inf,
                num_pairs=0,
                converged=False,
            )
        rng = np.random.default_rng(self.seed)
        pairs = self._select_pairs(problem.num_points, rng)
        rays = _ray_directions(problem.pixels, problem.intrinsics)
        # Perceived angle per pair — pose-free, from pixels alone.
        cos_perceived = np.clip((rays[pairs[:, 0]] * rays[pairs[:, 1]]).sum(1), -1, 1)
        perceived = np.arccos(cos_perceived)
        points_i = problem.world_points[pairs[:, 0]]
        points_j = problem.world_points[pairs[:, 1]]

        def residuals(position: np.ndarray) -> np.ndarray:
            to_i = points_i - position
            to_j = points_j - position
            norm_i = np.linalg.norm(to_i, axis=1)
            norm_j = np.linalg.norm(to_j, axis=1)
            safe = np.maximum(norm_i * norm_j, 1e-9)
            cos_geometric = np.clip((to_i * to_j).sum(1) / safe, -1.0, 1.0)
            return np.arccos(cos_geometric) - perceived

        def objective(position: np.ndarray) -> float:
            r = residuals(position)
            # Soft-L1 keeps stray wrong matches from dominating the basin.
            return float(np.sum(2.0 * (np.sqrt(1.0 + r**2) - 1.0)))

        de_bounds = list(zip(problem.bounds_low, problem.bounds_high))
        de_result = optimize.differential_evolution(
            objective,
            bounds=de_bounds,
            maxiter=self.de_max_iterations,
            popsize=self.de_population,
            tol=1e-6,
            seed=self.seed,
            polish=False,
        )
        polish = optimize.least_squares(
            residuals,
            de_result.x,
            loss="soft_l1",
            bounds=(problem.bounds_low, problem.bounds_high),
            max_nfev=200,
        )
        position = polish.x
        final = residuals(position)
        rms = float(np.sqrt(np.mean(final**2)))

        pose = self._recover_orientation(problem, rays, position)
        return LocalizationSolution(
            pose=pose,
            residual=rms,
            num_pairs=int(pairs.shape[0]),
            converged=bool(de_result.success or polish.success),
        )

    @staticmethod
    def _recover_orientation(
        problem: LocalizationProblem, rays: np.ndarray, position: np.ndarray
    ) -> Pose:
        """Kabsch-fit the rotation mapping camera rays onto world directions."""
        world_dirs = problem.world_points - position
        norms = np.linalg.norm(world_dirs, axis=1, keepdims=True)
        world_dirs = world_dirs / np.maximum(norms, 1e-9)
        covariance = rays.T @ world_dirs
        u, _, vt = np.linalg.svd(covariance)
        sign = np.sign(np.linalg.det(vt.T @ u.T))
        rotation = vt.T @ np.diag([1.0, 1.0, sign]) @ u.T
        yaw = float(np.arctan2(rotation[1, 0], rotation[0, 0]))
        pitch = float(np.arcsin(np.clip(-rotation[2, 0], -1.0, 1.0)))
        roll = float(np.arctan2(rotation[2, 1], rotation[2, 2]))
        return Pose(
            x=float(position[0]),
            y=float(position[1]),
            z=float(position[2]),
            yaw=yaw,
            pitch=pitch,
            roll=roll,
        )
