"""Spatial clustering of retrieved 3D points (DBSCAN, from scratch).

Wrong LSH matches scatter across the venue; correct matches concentrate
around the true scene.  Density clustering keeps "only those 3D points
in the largest cluster P, discarding others".
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

__all__ = ["dbscan_labels", "largest_cluster"]

NOISE = -1


def dbscan_labels(
    points: np.ndarray, eps: float, min_samples: int = 4
) -> np.ndarray:
    """Classic DBSCAN over 3D points; returns a label per point (-1 noise)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2:
        raise ValueError(f"points must be 2-D, got {points.shape}")
    if eps <= 0:
        raise ValueError(f"eps must be positive, got {eps}")
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1, got {min_samples}")
    n = points.shape[0]
    labels = np.full(n, NOISE, dtype=np.int64)
    if n == 0:
        return labels

    tree = cKDTree(points)
    neighborhoods = tree.query_ball_point(points, eps)
    is_core = np.array([len(nb) >= min_samples for nb in neighborhoods])

    cluster = 0
    visited = np.zeros(n, dtype=bool)
    for seed in range(n):
        if visited[seed] or not is_core[seed]:
            continue
        # Breadth-first expansion from this core point.
        queue = [seed]
        visited[seed] = True
        labels[seed] = cluster
        while queue:
            current = queue.pop()
            for neighbor in neighborhoods[current]:
                if labels[neighbor] == NOISE:
                    labels[neighbor] = cluster
                if not visited[neighbor]:
                    visited[neighbor] = True
                    if is_core[neighbor]:
                        queue.append(neighbor)
        cluster += 1
    return labels


def largest_cluster(
    points: np.ndarray, eps: float, min_samples: int = 4
) -> np.ndarray:
    """Indices of the most populous DBSCAN cluster (empty if only noise)."""
    labels = dbscan_labels(points, eps=eps, min_samples=min_samples)
    valid = labels[labels != NOISE]
    if valid.size == 0:
        return np.empty(0, dtype=np.int64)
    values, counts = np.unique(valid, return_counts=True)
    winner = values[np.argmax(counts)]
    return np.flatnonzero(labels == winner)
