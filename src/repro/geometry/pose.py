"""6-DoF poses: translation (x, y, z) plus rotation (yaw, pitch, roll).

The paper's wardriving metadata is exactly this: "three dimensions of
translation in (x, y, z) and three dimensions of device rotation/
orientation (yaw, pitch, roll)", relative to the session start.

Convention: right-handed world frame, Z up.  Camera looks along +X when
yaw = 0; yaw rotates about Z (left positive), pitch about the camera's
Y (up positive), roll about the optical axis.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["Pose", "rotation_matrix"]


def rotation_matrix(yaw: float, pitch: float, roll: float) -> np.ndarray:
    """World-from-camera rotation for the given Euler angles (radians)."""
    cy, sy = np.cos(yaw), np.sin(yaw)
    cp, sp = np.cos(pitch), np.sin(pitch)
    cr, sr = np.cos(roll), np.sin(roll)
    rot_yaw = np.array([[cy, -sy, 0], [sy, cy, 0], [0, 0, 1.0]])
    rot_pitch = np.array([[cp, 0, sp], [0, 1, 0], [-sp, 0, cp]])
    rot_roll = np.array([[1, 0, 0], [0, cr, -sr], [0, sr, cr]])
    return rot_yaw @ rot_pitch @ rot_roll


@dataclass(frozen=True)
class Pose:
    """A 6-DoF rigid pose (meters, radians)."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0
    yaw: float = 0.0
    pitch: float = 0.0
    roll: float = 0.0

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z], dtype=np.float64)

    @property
    def rotation(self) -> np.ndarray:
        return rotation_matrix(self.yaw, self.pitch, self.roll)

    def to_world(self, camera_points: np.ndarray) -> np.ndarray:
        """Map ``(n, 3)`` camera-frame points to the world frame."""
        camera_points = np.atleast_2d(np.asarray(camera_points, dtype=np.float64))
        return camera_points @ self.rotation.T + self.position

    def to_camera(self, world_points: np.ndarray) -> np.ndarray:
        """Map ``(n, 3)`` world points into the camera frame."""
        world_points = np.atleast_2d(np.asarray(world_points, dtype=np.float64))
        return (world_points - self.position) @ self.rotation

    def translated(self, dx: float, dy: float, dz: float = 0.0) -> "Pose":
        return replace(self, x=self.x + dx, y=self.y + dy, z=self.z + dz)

    def rotated(self, dyaw: float, dpitch: float = 0.0, droll: float = 0.0) -> "Pose":
        return replace(
            self,
            yaw=self.yaw + dyaw,
            pitch=self.pitch + dpitch,
            roll=self.roll + droll,
        )

    def position_error(self, other: "Pose") -> float:
        """Euclidean distance between two pose positions."""
        return float(np.linalg.norm(self.position - other.position))
