"""Angular separation math of the paper's Figure 11.

``gamma(p, C, F, S) = atan(|p - C| * tan(F / 2) / (S / 2))`` is the angle
at the camera between the image center and a keypoint's projection on
one axis.  The angle between two keypoints on that axis is the sum of
their gammas when they straddle the center, else the absolute
difference.  These perceived angles are the observations that the
Fig. 12 optimization reconciles with the keypoints' known 3D positions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gamma_angle", "angle_between_keypoints"]


def gamma_angle(
    pixel: np.ndarray | float,
    center: float,
    fov: float,
    side_length: float,
) -> np.ndarray:
    """Angle from the image center to pixel coordinate(s) on one axis."""
    pixel = np.asarray(pixel, dtype=np.float64)
    if side_length <= 0:
        raise ValueError(f"side_length must be positive, got {side_length}")
    if not 0 < fov < np.pi:
        raise ValueError(f"fov must be in (0, pi), got {fov}")
    return np.arctan(np.abs(pixel - center) * np.tan(fov / 2.0) / (side_length / 2.0))


def angle_between_keypoints(
    pixel_a: float,
    pixel_b: float,
    center: float,
    fov: float,
    side_length: float,
) -> float:
    """Angle at the camera between two keypoints along one image axis.

    "The x-axis angle between P0 and P1 is gamma(P0) + gamma(P1) if P0
    and P1 fall on opposite sides of C, or |gamma(P0) - gamma(P1)| if
    they are on the same side."
    """
    gamma_a = float(gamma_angle(pixel_a, center, fov, side_length))
    gamma_b = float(gamma_angle(pixel_b, center, fov, side_length))
    opposite_sides = (pixel_a - center) * (pixel_b - center) < 0
    if opposite_sides:
        return gamma_a + gamma_b
    return abs(gamma_a - gamma_b)
