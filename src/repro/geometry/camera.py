"""Pinhole camera model.

The camera frame convention matches :class:`repro.geometry.Pose`: the
optical axis is +X, image-right is -Y (world left is +Y), image-down is
-Z.  Intrinsics are expressed through the horizontal/vertical fields of
view, the parameterization used throughout the paper's Fig. 11/12 math.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.pose import Pose
from repro.util.validation import check_positive

__all__ = ["CameraIntrinsics", "PinholeCamera"]


@dataclass(frozen=True)
class CameraIntrinsics:
    """Image geometry: resolution plus horizontal/vertical FoV (radians)."""

    width: int = 640
    height: int = 480
    fov_h: float = np.deg2rad(62.0)  # typical smartphone main camera
    fov_v: float = np.deg2rad(48.0)

    def __post_init__(self) -> None:
        check_positive("width", self.width)
        check_positive("height", self.height)
        check_positive("fov_h", self.fov_h)
        check_positive("fov_v", self.fov_v)

    @property
    def focal_x(self) -> float:
        """Focal length in pixels along x (from the horizontal FoV)."""
        return (self.width / 2.0) / np.tan(self.fov_h / 2.0)

    @property
    def focal_y(self) -> float:
        return (self.height / 2.0) / np.tan(self.fov_v / 2.0)

    @property
    def center(self) -> tuple[float, float]:
        return (self.width / 2.0, self.height / 2.0)


class PinholeCamera:
    """A posed pinhole camera that can project and back-project points."""

    def __init__(self, intrinsics: CameraIntrinsics, pose: Pose) -> None:
        self.intrinsics = intrinsics
        self.pose = pose

    def project(self, world_points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Project ``(n, 3)`` world points to pixels.

        Returns ``(pixels, visible)`` where ``pixels`` is ``(n, 2)``
        float64 (x right, y down) and ``visible`` flags points in front
        of the camera and inside the frame.
        """
        camera_points = self.pose.to_camera(world_points)
        depth = camera_points[:, 0]
        cx, cy = self.intrinsics.center
        with np.errstate(divide="ignore", invalid="ignore"):
            px = cx - self.intrinsics.focal_x * camera_points[:, 1] / depth
            py = cy - self.intrinsics.focal_y * camera_points[:, 2] / depth
        pixels = np.column_stack([px, py])
        visible = (
            (depth > 1e-6)
            & (px >= 0)
            & (px < self.intrinsics.width)
            & (py >= 0)
            & (py < self.intrinsics.height)
        )
        pixels[~visible] = np.nan
        return pixels, visible

    def back_project(self, pixels: np.ndarray, depths: np.ndarray) -> np.ndarray:
        """Lift ``(n, 2)`` pixels at ``(n,)`` ranges back to world points.

        ``depths`` are distances along the optical axis (camera X), the
        quantity an IR depth sensor reports per pixel.
        """
        pixels = np.atleast_2d(np.asarray(pixels, dtype=np.float64))
        depths = np.atleast_1d(np.asarray(depths, dtype=np.float64))
        if pixels.shape[0] != depths.shape[0]:
            raise ValueError("pixels and depths must align")
        cx, cy = self.intrinsics.center
        cam_y = -(pixels[:, 0] - cx) / self.intrinsics.focal_x * depths
        cam_z = -(pixels[:, 1] - cy) / self.intrinsics.focal_y * depths
        camera_points = np.column_stack([depths, cam_y, cam_z])
        return self.pose.to_world(camera_points)

    def depth_of(self, world_points: np.ndarray) -> np.ndarray:
        """Optical-axis depth of world points (NaN behind the camera)."""
        camera_points = self.pose.to_camera(world_points)
        depth = camera_points[:, 0].copy()
        depth[depth <= 0] = np.nan
        return depth
