"""Camera geometry: pinhole projection, 6-DoF poses, Fig. 11 angle math."""

from repro.geometry.angles import angle_between_keypoints, gamma_angle
from repro.geometry.camera import CameraIntrinsics, PinholeCamera
from repro.geometry.pose import Pose, rotation_matrix

__all__ = [
    "CameraIntrinsics",
    "PinholeCamera",
    "Pose",
    "angle_between_keypoints",
    "gamma_angle",
    "rotation_matrix",
]
