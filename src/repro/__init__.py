"""VisualPrint — low-bandwidth cloud offload for mobile AR.

A full from-scratch reproduction of *Low Bandwidth Offload for Mobile
AR* (Jain, Manweiler, Roy Choudhury; CoNEXT 2016).  The headline idea:
instead of uploading frames (or all their keypoints), a mobile client
consults a compact, downloadable **uniqueness oracle** — counting Bloom
filters indexed by Euclidean LSH — and ships only the few hundred most
globally-unique keypoints, cutting uplink traffic by an order of
magnitude at comparable retrieval accuracy.

Quickstart::

    from repro import (
        IndoorEnvironment, WardriveSession, VisualPrintServer,
        VisualPrintClient, VisualPrintConfig,
    )

    env = IndoorEnvironment.build("office", seed=3)
    mapping = WardriveSession(env, seed=3).run()
    config = VisualPrintConfig(descriptor_capacity=mapping.num_mappings)
    server = VisualPrintServer(config, bounds=env.bounds)
    server.ingest(mapping.descriptors, mapping.positions)
    client = VisualPrintClient(server.publish_oracle(), config)
    # fingerprint = client.process_frame(image); server.localize(fingerprint)

See ``examples/`` for runnable end-to-end scenarios and ``DESIGN.md``
for the subsystem inventory and experiment index.
"""

from repro.core import (
    Fingerprint,
    UniquenessOracle,
    VisualPrintClient,
    VisualPrintConfig,
    VisualPrintServer,
)
from repro.features import HarrisDetector, KeypointSet, SiftExtractor, SiftParams
from repro.geometry import CameraIntrinsics, PinholeCamera, Pose
from repro.imaging.synth import SceneLibrary
from repro.lsh import E2LSHParams, LshIndex
from repro.wardrive import DriftModel, IndoorEnvironment, TangoRig, WardriveSession

__version__ = "1.0.0"

__all__ = [
    "CameraIntrinsics",
    "DriftModel",
    "E2LSHParams",
    "Fingerprint",
    "HarrisDetector",
    "IndoorEnvironment",
    "KeypointSet",
    "LshIndex",
    "PinholeCamera",
    "Pose",
    "SceneLibrary",
    "SiftExtractor",
    "SiftParams",
    "TangoRig",
    "UniquenessOracle",
    "VisualPrintClient",
    "VisualPrintConfig",
    "VisualPrintServer",
    "WardriveSession",
    "__version__",
]
