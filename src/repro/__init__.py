"""VisualPrint — low-bandwidth cloud offload for mobile AR.

A full from-scratch reproduction of *Low Bandwidth Offload for Mobile
AR* (Jain, Manweiler, Roy Choudhury; CoNEXT 2016).  The headline idea:
instead of uploading frames (or all their keypoints), a mobile client
consults a compact, downloadable **uniqueness oracle** — counting Bloom
filters indexed by Euclidean LSH — and ships only the few hundred most
globally-unique keypoints, cutting uplink traffic by an order of
magnitude at comparable retrieval accuracy.

Quickstart::

    from repro import (
        IndoorEnvironment, WardriveSession, VisualPrintServer,
        VisualPrintClient, VisualPrintConfig,
    )

    env = IndoorEnvironment.build("office", seed=3)
    mapping = WardriveSession(env, seed=3).run()
    config = VisualPrintConfig(descriptor_capacity=mapping.num_mappings)
    server = VisualPrintServer(config, bounds=env.bounds)
    server.ingest(mapping.descriptors, mapping.positions)
    client = VisualPrintClient(server.publish_oracle(), config)
    # fingerprint = client.process_frame(image); server.localize(fingerprint)

The blessed public surface is :mod:`repro.api` (re-exported here):
config objects, the client/server engines, the multi-venue serving
frontend, frame codecs, and the snapshot store.  Everything else —
and any name with a leading underscore — is internal (DESIGN.md §11).

See ``examples/`` for runnable end-to-end scenarios and ``DESIGN.md``
for the subsystem inventory and experiment index.
"""

from repro.api import (
    CHANNEL_PRESETS,
    ClientConfig,
    Fingerprint,
    MetricsRegistry,
    OracleRefresher,
    RetryPolicy,
    ServerConfig,
    ServerStateStore,
    ServingFrontend,
    SnapshotStore,
    UniquenessOracle,
    UplinkChannel,
    VenueRegistry,
    VisualPrintClient,
    VisualPrintConfig,
    VisualPrintServer,
)
from repro.codecs import H264Codec, JpegCodec
from repro.features import HarrisDetector, KeypointSet, SiftExtractor, SiftParams
from repro.geometry import CameraIntrinsics, PinholeCamera, Pose
from repro.imaging.synth import SceneLibrary
from repro.lsh import E2LSHParams, LshIndex
from repro.wardrive import DriftModel, IndoorEnvironment, TangoRig, WardriveSession

__version__ = "1.1.0"

__all__ = [
    "CHANNEL_PRESETS",
    "CameraIntrinsics",
    "ClientConfig",
    "DriftModel",
    "E2LSHParams",
    "Fingerprint",
    "H264Codec",
    "HarrisDetector",
    "IndoorEnvironment",
    "JpegCodec",
    "KeypointSet",
    "LshIndex",
    "MetricsRegistry",
    "OracleRefresher",
    "PinholeCamera",
    "Pose",
    "RetryPolicy",
    "SceneLibrary",
    "ServerConfig",
    "ServerStateStore",
    "ServingFrontend",
    "SiftExtractor",
    "SiftParams",
    "SnapshotStore",
    "TangoRig",
    "UniquenessOracle",
    "UplinkChannel",
    "VenueRegistry",
    "VisualPrintClient",
    "VisualPrintConfig",
    "VisualPrintServer",
    "WardriveSession",
    "__version__",
]
