"""Fault injection and recovery for the uplink channel model.

The paper targets flaky mobile networks ("unpredictable end-to-end
network latency"), yet an :class:`repro.network.UplinkChannel` is a
perfect pipe.  This module adds the missing failure surface and the
client-side recovery machinery:

* :class:`FaultSpec` / :class:`FaultyChannel` — a seeded wrapper that
  injects packet loss, transient outages (a Gilbert–Elliott good/bad
  chain advanced once per transfer attempt), and bandwidth dips around
  any channel.  A null spec delegates every call verbatim, so a
  zero-fault wrap is bit-identical to the bare channel — latencies,
  payload bytes, and metrics.
* :class:`RetryPolicy` / :func:`submit_payload` — deterministic
  exponential backoff with jitter under a per-query latency budget,
  stepping down a payload "degradation ladder" (smaller fingerprints)
  on each failed attempt.

Failed attempts surface as ``network.fault`` spans (joining the ambient
query trace) and ``network_faults_injected_total`` counters; retries and
degradations count into ``network_retries_total`` /
``queries_degraded_total`` / ``queries_abandoned_total``.  All fault
decisions draw from a private :func:`repro.util.rng.rng_for` stream, so
a fixed seed replays the exact same fault pattern — and the caller's
jitter rng is never touched by code that a fault-free run would skip.

Two hooks feed the predictive layer (:mod:`repro.network.linkstate`):

* :meth:`FaultyChannel.add_observer` — attempt-outcome observers see
  every resolved attempt (``"ok"``/``"dip"`` on success, the fault kind
  on failure) with its bytes, simulated elapsed time, and direction.
* Gilbert–Elliott transitions emit ``channel.outage_enter`` /
  ``channel.outage_exit`` structured events, and observed outage time
  accumulates into ``channel_outage_seconds_total``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.network.channel import UplinkChannel
from repro.obs import current_registry, emit_event, record_span
from repro.util.rng import rng_for
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "AttemptRecord",
    "FaultSpec",
    "FaultyChannel",
    "RetryPolicy",
    "SubmissionOutcome",
    "TransferError",
    "TransferOutcome",
    "submit_payload",
]


class TransferError(RuntimeError):
    """A simulated transfer attempt that did not complete.

    ``elapsed_seconds`` is the simulated time the device wasted on the
    attempt before detecting the failure (deterministic — no jitter, so
    a failed attempt never consumes the caller's rng stream).
    """

    def __init__(
        self,
        kind: str,
        elapsed_seconds: float,
        direction: str = "up",
        channel: str = "",
    ) -> None:
        super().__init__(
            f"simulated {kind} on {channel or 'channel'} ({direction}link)"
        )
        self.kind = kind
        self.elapsed_seconds = float(elapsed_seconds)
        self.direction = direction
        self.channel = channel


@dataclass(frozen=True)
class FaultSpec:
    """Fault mix for one :class:`FaultyChannel`.

    ``loss`` is the per-attempt drop probability while the link is in
    the Gilbert–Elliott *good* state; ``outage_enter`` / ``outage_exit``
    are the good→bad and bad→exit transition probabilities (every
    attempt during the bad state fails fast); ``dip_probability`` makes
    a good-state attempt run at ``1 / dip_factor`` of the channel's
    bandwidth instead of failing.
    """

    loss: float = 0.0
    outage_enter: float = 0.0
    outage_exit: float = 0.3
    dip_probability: float = 0.0
    dip_factor: float = 4.0
    seed: int = 0

    def __post_init__(self) -> None:
        for field in ("loss", "outage_enter", "dip_probability"):
            check_in_range(field, getattr(self, field), 0.0, 1.0)
        check_in_range("outage_exit", self.outage_exit, 1e-9, 1.0)
        check_positive("dip_factor", self.dip_factor)
        if self.dip_factor < 1.0:
            raise ValueError(
                f"dip_factor must be >= 1 (a slowdown), got {self.dip_factor}"
            )

    @property
    def is_null(self) -> bool:
        """True when the spec can never perturb a transfer."""
        return (
            self.loss == 0.0
            and self.outage_enter == 0.0
            and self.dip_probability == 0.0
        )


class FaultyChannel:
    """A seeded fault-injecting wrapper around an :class:`UplinkChannel`.

    With a null spec (``loss=0, outage_enter=0, dip_probability=0``)
    every method delegates directly to the wrapped channel — same
    latencies, same metrics, same span stream, and the private fault rng
    is never consumed — so wrapping is free until faults are enabled.

    >>> from repro.network import CHANNEL_PRESETS
    >>> lossy = FaultyChannel(CHANNEL_PRESETS["lte"], loss=0.2, seed=3)
    """

    def __init__(
        self,
        channel: UplinkChannel,
        spec: FaultSpec | None = None,
        **spec_fields,
    ) -> None:
        if spec is not None and spec_fields:
            raise ValueError("pass either a FaultSpec or field overrides, not both")
        self.inner = channel
        self.spec = spec if spec is not None else FaultSpec(**spec_fields)
        self._rng = rng_for(self.spec.seed, f"network/faults/{channel.name}")
        self._bad = False  # Gilbert–Elliott state: True while in an outage
        self._observers: list = []
        # Accounting for the outage run in progress (attempt-observable
        # time only: each bad-state attempt costs one RTT radio probe).
        self._outage_attempts = 0
        self._outage_seconds = 0.0

    # -- passthrough surface (duck-types as an UplinkChannel) ----------

    @property
    def name(self) -> str:
        return self.inner.name

    @property
    def bandwidth_mbps(self) -> float:
        return self.inner.bandwidth_mbps

    @property
    def downlink_mbps(self) -> float | None:
        return self.inner.downlink_mbps

    @property
    def rtt_ms(self) -> float:
        return self.inner.rtt_ms

    @property
    def jitter_sigma(self) -> float:
        return self.inner.jitter_sigma

    @property
    def bytes_per_second(self) -> float:
        return self.inner.bytes_per_second

    @property
    def reliable(self) -> UplinkChannel:
        """The wrapped channel, for legs modeled fault-free (tiny acks)."""
        return self.inner

    def serialization_seconds(self, num_bytes: int) -> float:
        return self.inner.serialization_seconds(num_bytes)

    # -- attempt-outcome observers -------------------------------------

    def add_observer(self, observer) -> None:
        """Register an attempt-outcome observer.

        After every attempt this channel resolves, the observer's
        ``observe_attempt(kind, num_bytes, elapsed_seconds, direction)``
        method (or the observer itself, when it is a plain callable) is
        invoked — ``kind`` is ``"ok"`` or ``"dip"`` on success and the
        :class:`TransferError` kind on failure.  This is how a
        :class:`repro.network.linkstate.LinkQualityEstimator` sees the
        outcome of every real transfer without the submission loop
        having to thread it through.  Observers must not raise.
        """
        fn = getattr(observer, "observe_attempt", observer)
        if not callable(fn):
            raise TypeError(
                "observer must be callable or expose observe_attempt()"
            )
        self._observers.append(fn)

    def remove_observer(self, observer) -> None:
        """Detach a previously registered observer (no-op if absent)."""
        fn = getattr(observer, "observe_attempt", observer)
        self._observers = [entry for entry in self._observers if entry != fn]

    def _notify(
        self, kind: str, num_bytes: int, elapsed: float, direction: str
    ) -> None:
        for observer in self._observers:
            observer(kind, int(num_bytes), float(elapsed), direction)

    # -- fault machinery -----------------------------------------------

    def _advance(self) -> str | None:
        """One Gilbert–Elliott step; returns the fault kind drawn, if any.

        Draws are gated on the corresponding probability being non-zero
        so enabling one fault class does not shift another's stream.
        """
        spec = self.spec
        rng = self._rng
        was_bad = self._bad
        if self._bad:
            if float(rng.random()) < spec.outage_exit:
                self._bad = False
        elif spec.outage_enter and float(rng.random()) < spec.outage_enter:
            self._bad = True
        if self._bad != was_bad:
            self._transition()
        if self._bad:
            return "outage"
        if spec.loss and float(rng.random()) < spec.loss:
            return "loss"
        if spec.dip_probability and float(rng.random()) < spec.dip_probability:
            return "dip"
        return None

    def _transition(self) -> None:
        """Emit the structured event for a Gilbert–Elliott state flip."""
        if self._bad:
            self._outage_attempts = 0
            self._outage_seconds = 0.0
            emit_event("channel.outage_enter", channel=self.inner.name)
        else:
            emit_event(
                "channel.outage_exit",
                channel=self.inner.name,
                attempts=self._outage_attempts,
                outage_seconds=round(self._outage_seconds, 6),
            )

    def _account_outage(self, elapsed: float) -> None:
        """Accrue one bad-state attempt into the outage-time accounting."""
        self._outage_attempts += 1
        self._outage_seconds += elapsed
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "channel_outage_seconds_total",
                help="simulated seconds attempts spent probing an outage",
                channel=self.inner.name,
            ).inc(elapsed)

    def _fault_elapsed(self, kind: str, num_bytes: int, direction: str) -> float:
        """Deterministic simulated cost of a failed attempt.

        A lost payload is fully transmitted and then times out waiting
        for the ack (serialization + one RTT); an outage fails fast
        (the radio reports no link after one RTT probe).
        """
        if kind == "outage":
            return self.inner.rtt_ms / 1e3
        if direction == "down":
            serialization = self.inner.response_serialization_seconds(num_bytes)
        else:
            serialization = self.inner.serialization_seconds(num_bytes)
        return serialization + self.inner.rtt_ms / 1e3

    def _raise_fault(self, kind: str, num_bytes: int, direction: str) -> None:
        elapsed = self._fault_elapsed(kind, num_bytes, direction)
        if kind == "outage":
            self._account_outage(elapsed)
        self._notify(kind, num_bytes, elapsed, direction)
        record_span(
            "network.fault",
            elapsed,
            channel=self.inner.name,
            kind=kind,
            bytes=int(num_bytes),
            direction=direction,
        )
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "network_faults_injected_total",
                help="transfer attempts killed by the fault injector",
                channel=self.inner.name,
                kind=kind,
            ).inc()
            if kind == "loss":
                registry.counter(
                    "network_wasted_bytes_total",
                    help="bytes transmitted on attempts that were lost",
                    channel=self.inner.name,
                ).inc(num_bytes)
        raise TransferError(
            kind, elapsed, direction=direction, channel=self.inner.name
        )

    def _dipped(self) -> UplinkChannel:
        """The wrapped channel dilated to the dip bandwidth."""
        spec = self.spec
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "network_faults_injected_total",
                help="transfer attempts killed by the fault injector",
                channel=self.inner.name,
                kind="dip",
            ).inc()
        downlink = self.inner.downlink_mbps
        return dataclasses.replace(
            self.inner,
            bandwidth_mbps=self.inner.bandwidth_mbps / spec.dip_factor,
            downlink_mbps=None if downlink is None else downlink / spec.dip_factor,
        )

    # -- channel surface with faults -----------------------------------

    def transfer_seconds(
        self, num_bytes: int, rng: np.random.Generator | None = None
    ) -> float:
        """Uplink attempt; raises :class:`TransferError` on a fault."""
        if self.spec.is_null and not self._observers:
            return self.inner.transfer_seconds(num_bytes, rng)
        kind = self._advance()
        if kind in ("loss", "outage"):
            self._raise_fault(kind, num_bytes, "up")
        effective = self._dipped() if kind == "dip" else self.inner
        seconds = effective.transfer_seconds(num_bytes, rng)
        self._notify(kind or "ok", num_bytes, seconds, "up")
        return seconds

    def response_seconds(
        self, num_bytes: int, rng: np.random.Generator | None = None
    ) -> float:
        """Downlink attempt; raises :class:`TransferError` on a fault."""
        if self.spec.is_null and not self._observers:
            return self.inner.response_seconds(num_bytes, rng)
        kind = self._advance()
        if kind in ("loss", "outage"):
            self._raise_fault(kind, num_bytes, "down")
        effective = self._dipped() if kind == "dip" else self.inner
        seconds = effective.response_seconds(num_bytes, rng)
        self._notify(kind or "ok", num_bytes, seconds, "down")
        return seconds

    def round_trip_seconds(
        self,
        upload_bytes: int,
        response_bytes: int = 256,
        server_seconds: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Faultable round trip; either leg may raise :class:`TransferError`."""
        if self.spec.is_null and not self._observers:
            return self.inner.round_trip_seconds(
                upload_bytes, response_bytes, server_seconds, rng
            )
        up = self.transfer_seconds(upload_bytes, rng)
        down = self.response_seconds(response_bytes, rng)
        return up + server_seconds + down

    def attempt_serialization_seconds(self, num_bytes: int) -> float:
        """Serialization-only attempt for capture-stream simulation.

        :func:`repro.network.simulate_stream` models uplink occupancy
        with pure serialization time; this is the fault-raising variant
        it uses when retransmission is enabled.  A lost frame occupies
        the uplink for its full serialization; an outage is detected
        immediately (no air time).
        """
        if self.spec.is_null and not self._observers:
            return self.inner.serialization_seconds(num_bytes)
        kind = self._advance()
        if kind in ("loss", "outage"):
            elapsed = (
                0.0
                if kind == "outage"
                else self.inner.serialization_seconds(num_bytes)
            )
            if kind == "outage":
                self._account_outage(elapsed)
            self._notify(kind, num_bytes, elapsed, "up")
            record_span(
                "network.fault",
                elapsed,
                channel=self.inner.name,
                kind=kind,
                bytes=int(num_bytes),
                direction="up",
            )
            registry = current_registry()
            if registry is not None:
                registry.counter(
                    "network_faults_injected_total",
                    help="transfer attempts killed by the fault injector",
                    channel=self.inner.name,
                    kind=kind,
                ).inc()
                if kind == "loss":
                    registry.counter(
                        "network_wasted_bytes_total",
                        help="bytes transmitted on attempts that were lost",
                        channel=self.inner.name,
                    ).inc(num_bytes)
            raise TransferError(kind, elapsed, direction="up", channel=self.name)
        effective = self._dipped() if kind == "dip" else self.inner
        seconds = effective.serialization_seconds(num_bytes)
        self._notify(kind or "ok", num_bytes, seconds, "up")
        return seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff under a per-query budget.

    ``backoff_seconds(retry_index)`` grows geometrically from
    ``base_backoff_seconds``; with an rng, a multiplicative jitter in
    ``[1, 1 + jitter]`` decorrelates retry storms.  ``budget_seconds``
    caps the total simulated latency (attempts + backoffs) a query may
    spend before it is abandoned.
    """

    max_attempts: int = 4
    base_backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.1
    budget_seconds: float = 30.0

    def __post_init__(self) -> None:
        check_positive("max_attempts", self.max_attempts)
        check_positive("budget_seconds", self.budget_seconds)
        if self.base_backoff_seconds < 0:
            raise ValueError("base_backoff_seconds must be non-negative")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        check_in_range("jitter", self.jitter, 0.0, 1.0)

    def backoff_seconds(
        self, retry_index: int, rng: np.random.Generator | None = None
    ) -> float:
        """Pause before retry number ``retry_index`` (1-based)."""
        if retry_index < 1:
            raise ValueError(f"retry_index must be >= 1, got {retry_index}")
        base = self.base_backoff_seconds * self.backoff_multiplier ** (
            retry_index - 1
        )
        if rng is None or self.jitter == 0:
            return base
        return base * (1.0 + self.jitter * float(rng.random()))


@dataclass(frozen=True)
class AttemptRecord:
    """One transfer attempt inside a :func:`submit_payload` ladder walk."""

    kind: str  # "ok" on success, else the TransferError kind
    elapsed_seconds: float  # simulated time the attempt consumed
    payload_bytes: int  # bytes the attempt tried to push
    rung: int  # degradation-ladder index the attempt used

    @property
    def ok(self) -> bool:
        return self.kind in ("ok", "dip")


@dataclass(frozen=True)
class TransferOutcome:
    """What happened to one payload pushed through :func:`submit_payload`.

    Carries the full per-attempt history (``attempt_records``) so callers
    — the adaptive policy above all — never re-derive attempt kinds from
    metrics deltas.  The legacy :class:`SubmissionOutcome` scalar shape
    (``attempts`` / ``retries`` / ``latency_seconds`` / ...) survives as
    thin properties over the records.
    """

    status: str  # "delivered" | "degraded" | "abandoned"
    attempt_records: tuple[AttemptRecord, ...]
    backoff_seconds: float = 0.0

    @property
    def delivered(self) -> bool:
        return self.status != "abandoned"

    @property
    def attempts(self) -> int:
        return len(self.attempt_records)

    @property
    def retries(self) -> int:
        return max(0, len(self.attempt_records) - 1)

    @property
    def latency_seconds(self) -> float:
        return (
            sum(record.elapsed_seconds for record in self.attempt_records)
            + self.backoff_seconds
        )

    @property
    def payload_bytes(self) -> int:
        """Bytes of the successful attempt (0 if abandoned)."""
        if not self.delivered or not self.attempt_records:
            return 0
        return self.attempt_records[-1].payload_bytes

    @property
    def wasted_seconds(self) -> float:
        """Simulated time burnt on failed attempts."""
        return sum(
            record.elapsed_seconds
            for record in self.attempt_records
            if not record.ok
        )

    @property
    def wasted_bytes(self) -> int:
        """Bytes fully transmitted on attempts that were then lost.

        Outage attempts fail fast (one RTT radio probe, nothing on the
        air), so only ``kind == "loss"`` attempts burn payload bytes.
        """
        return sum(
            record.payload_bytes
            for record in self.attempt_records
            if record.kind == "loss"
        )

    @property
    def ladder_step(self) -> int:
        """Ladder index of the last attempt."""
        if not self.attempt_records:
            return 0
        return self.attempt_records[-1].rung


#: Backwards-compatible alias — PR 4 callers imported this name.
SubmissionOutcome = TransferOutcome


def submit_payload(
    channel,
    ladder: list[int],
    policy: RetryPolicy | None = None,
    rng: np.random.Generator | None = None,
    *,
    registry=None,
    leg: str = "up",
    start_step: int = 0,
) -> TransferOutcome:
    """Push a payload through ``channel`` with retries and degradation.

    ``ladder`` lists payload sizes from full quality downward (a single
    entry means no degradation is possible); each failed attempt steps
    one rung down before retrying.  On a fault-free channel the first
    attempt succeeds and the call is exactly one ``transfer_seconds`` —
    no extra metrics, spans, or rng draws — preserving zero-fault
    parity.  Counters (``network_retries_total``,
    ``queries_degraded_total``, ``queries_abandoned_total``) are only
    created once they first increment.
    """
    if not ladder:
        raise ValueError("ladder must contain at least one payload size")
    policy = policy or RetryPolicy()
    registry = registry if registry is not None else current_registry()
    channel_name = getattr(channel, "name", "channel")
    send = channel.response_seconds if leg == "down" else channel.transfer_seconds
    step = min(max(int(start_step), 0), len(ladder) - 1)
    latency = 0.0
    backoff_total = 0.0
    attempts = 0
    records: list[AttemptRecord] = []
    while attempts < policy.max_attempts:
        attempts += 1
        size = int(ladder[step])
        try:
            seconds = send(size, rng)
        except TransferError as fault:
            latency += fault.elapsed_seconds
            records.append(
                AttemptRecord(fault.kind, fault.elapsed_seconds, size, step)
            )
            if attempts >= policy.max_attempts or latency >= policy.budget_seconds:
                break
            pause = policy.backoff_seconds(attempts, rng)
            if latency + pause >= policy.budget_seconds:
                break
            latency += pause
            backoff_total += pause
            record_span(
                "network.backoff",
                pause,
                channel=channel_name,
                attempt=attempts,
            )
            if registry is not None:
                registry.counter(
                    "network_retries_total",
                    help="resubmissions after a failed transfer attempt",
                    channel=channel_name,
                ).inc()
            next_step = min(step + 1, len(ladder) - 1)
            if next_step != step:
                emit_event(
                    "degrade.step",
                    channel=channel_name,
                    step=next_step,
                    payload_bytes=int(ladder[next_step]),
                    attempt=attempts,
                )
            step = next_step
            continue
        latency += seconds
        records.append(AttemptRecord("ok", seconds, size, step))
        status = "degraded" if step > 0 else "delivered"
        if status == "degraded" and registry is not None:
            registry.counter(
                "queries_degraded_total",
                help="queries delivered with a shrunken fingerprint",
                channel=channel_name,
            ).inc()
        return TransferOutcome(
            status=status,
            attempt_records=tuple(records),
            backoff_seconds=backoff_total,
        )
    if registry is not None:
        registry.counter(
            "queries_abandoned_total",
            help="queries that exhausted their retry budget undelivered",
            channel=channel_name,
        ).inc()
    emit_event(
        "retry.exhausted",
        channel=channel_name,
        attempts=attempts,
        latency_seconds=round(latency, 6),
        budget_seconds=policy.budget_seconds,
    )
    return TransferOutcome(
        status="abandoned",
        attempt_records=tuple(records),
        backoff_seconds=backoff_total,
    )
