"""Uplink channel model, sustainable-FPS math, and upload traces.

Figure 2 ("uplink bandwidth versus sustainable frames per second, by
encoding") and Figure 14 ("cumulative data upload by execution time")
are deterministic functions of payload sizes and channel rate; this
package provides those functions plus LTE/WiFi presets with jitter for
latency experiments, a seeded fault-injection layer
(:class:`FaultyChannel`, :class:`RetryPolicy`) for chaos runs, and the
predictive layer (:class:`LinkQualityEstimator`,
:class:`AdaptiveOffloadPolicy`) that shapes transmissions *before*
sending from observed channel history.
"""

from repro.network.channel import CHANNEL_PRESETS, UplinkChannel, resolve_channel
from repro.network.faults import (
    AttemptRecord,
    FaultSpec,
    FaultyChannel,
    RetryPolicy,
    SubmissionOutcome,
    TransferError,
    TransferOutcome,
    submit_payload,
)
from repro.network.fps import sustainable_fps, fps_curve
from repro.network.linkstate import (
    AdaptiveConfig,
    AdaptiveOffloadPolicy,
    LinkQualityEstimator,
    OffloadDecision,
)
from repro.network.upload import (
    UploadEvent,
    UploadTrace,
    record_wasted_transfer,
    simulate_stream,
)

__all__ = [
    "CHANNEL_PRESETS",
    "AdaptiveConfig",
    "AdaptiveOffloadPolicy",
    "AttemptRecord",
    "FaultSpec",
    "FaultyChannel",
    "LinkQualityEstimator",
    "OffloadDecision",
    "RetryPolicy",
    "SubmissionOutcome",
    "TransferError",
    "TransferOutcome",
    "UplinkChannel",
    "UploadEvent",
    "UploadTrace",
    "fps_curve",
    "record_wasted_transfer",
    "resolve_channel",
    "simulate_stream",
    "submit_payload",
    "sustainable_fps",
]
