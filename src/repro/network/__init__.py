"""Uplink channel model, sustainable-FPS math, and upload traces.

Figure 2 ("uplink bandwidth versus sustainable frames per second, by
encoding") and Figure 14 ("cumulative data upload by execution time")
are deterministic functions of payload sizes and channel rate; this
package provides those functions plus LTE/WiFi presets with jitter for
latency experiments.
"""

from repro.network.channel import CHANNEL_PRESETS, UplinkChannel
from repro.network.fps import sustainable_fps, fps_curve
from repro.network.upload import UploadEvent, UploadTrace, simulate_stream

__all__ = [
    "CHANNEL_PRESETS",
    "UplinkChannel",
    "UploadEvent",
    "UploadTrace",
    "fps_curve",
    "simulate_stream",
    "sustainable_fps",
]
