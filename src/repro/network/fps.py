"""Sustainable frame rate as a function of uplink bandwidth (Fig. 2)."""

from __future__ import annotations

import numpy as np

from repro.util.validation import check_positive

__all__ = ["sustainable_fps", "fps_curve"]


def sustainable_fps(bandwidth_mbps: float, bytes_per_frame: float) -> float:
    """Frames per second a stream can sustain at the given uplink rate.

    The Fig. 2 quantity: ``rate / frame size``.  A 523 KB PNG frame on a
    2 Mbps uplink sustains well under 1 FPS; the figure's log-log lines
    are exactly this function per encoder.
    """
    check_positive("bandwidth_mbps", bandwidth_mbps)
    check_positive("bytes_per_frame", bytes_per_frame)
    return bandwidth_mbps * 1e6 / 8.0 / bytes_per_frame


def fps_curve(
    bandwidths_mbps: np.ndarray, bytes_per_frame: float
) -> np.ndarray:
    """Vectorized :func:`sustainable_fps` over an uplink sweep."""
    bandwidths_mbps = np.asarray(bandwidths_mbps, dtype=np.float64)
    if np.any(bandwidths_mbps <= 0):
        raise ValueError("bandwidths must be positive")
    check_positive("bytes_per_frame", bytes_per_frame)
    return bandwidths_mbps * 1e6 / 8.0 / bytes_per_frame
