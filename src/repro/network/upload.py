"""Cumulative upload traces (Fig. 14).

Simulates a capture session: frames arrive at the camera rate; each
produces a payload (whole frame, or a VisualPrint fingerprint) that
queues on the uplink.  The trace records cumulative bytes sent over
time — the two curves of Fig. 14.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.channel import UplinkChannel
from repro.network.faults import RetryPolicy, TransferError
from repro.obs import current_registry

__all__ = ["UploadEvent", "UploadTrace", "record_wasted_transfer", "simulate_stream"]


def record_wasted_transfer(
    num_bytes: int, channel: str = "download", registry=None
) -> None:
    """Count transfer bytes that bought nothing as wasted.

    The fault layer counts bytes on attempts *lost in flight*; this is
    the other way a transfer is wasted — delivered intact as far as the
    link can tell, then refused by swap-in validation (see
    ``repro.store.validate``).  Both land in the same
    ``network_wasted_bytes_total`` series so Fig. 14-style accounting
    sees every byte that crossed the air without advancing the system.
    """
    registry = registry if registry is not None else current_registry()
    if registry is not None:
        registry.counter(
            "network_wasted_bytes_total",
            help="bytes transmitted on attempts that were lost",
            channel=channel,
        ).inc(num_bytes)


@dataclass(frozen=True)
class UploadEvent:
    """One payload leaving the device."""

    time_seconds: float  # when the upload completes
    payload_bytes: int
    cumulative_bytes: int


@dataclass
class UploadTrace:
    """The cumulative-upload curve for one scheme."""

    scheme: str
    events: list[UploadEvent] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        return self.events[-1].cumulative_bytes if self.events else 0

    def cumulative_at(self, times: np.ndarray) -> np.ndarray:
        """Cumulative bytes sent by each query time (step interpolation)."""
        times = np.asarray(times, dtype=np.float64)
        if not self.events:
            return np.zeros_like(times)
        event_times = np.array([e.time_seconds for e in self.events])
        cumulative = np.array([e.cumulative_bytes for e in self.events])
        indices = np.searchsorted(event_times, times, side="right") - 1
        out = np.where(indices >= 0, cumulative[np.maximum(indices, 0)], 0)
        return out.astype(np.float64)


def simulate_stream(
    scheme: str,
    payload_bytes_per_frame: list[int],
    channel: UplinkChannel,
    capture_fps: float = 10.0,
    drop_when_backlogged: bool = True,
    retry: RetryPolicy | None = None,
) -> UploadTrace:
    """Run a capture session through the uplink.

    Frames are captured every ``1 / capture_fps`` seconds.  If the
    uplink is still busy when a new frame arrives, the frame is dropped
    (the paper's client "rejects frames when processing falls behind the
    realtime stream") unless ``drop_when_backlogged`` is False, in which
    case frames queue.

    With ``retry`` set and a fault-injecting channel (one that exposes
    ``attempt_serialization_seconds``), lost frames are retransmitted
    under the policy: failed attempts and backoff pauses occupy the
    uplink, so faults cost realtime budget and cause knock-on drops.
    Frames that exhaust the policy are counted in
    ``network_frames_abandoned_total`` — never silently discarded.
    """
    if capture_fps <= 0:
        raise ValueError(f"capture_fps must be positive, got {capture_fps}")
    trace = UploadTrace(scheme=scheme)
    registry = current_registry()
    attempt_seconds = getattr(
        channel, "attempt_serialization_seconds", channel.serialization_seconds
    )
    uplink_free_at = 0.0
    cumulative = 0
    dropped = 0
    abandoned = 0
    retries = 0
    for frame_index, payload in enumerate(payload_bytes_per_frame):
        capture_time = frame_index / capture_fps
        if drop_when_backlogged and uplink_free_at > capture_time:
            dropped += 1
            continue
        start = max(capture_time, uplink_free_at)
        if retry is None:
            uplink_free_at = start + channel.serialization_seconds(payload)
            delivered = True
        else:
            elapsed = 0.0
            delivered = False
            for attempt_index in range(1, retry.max_attempts + 1):
                try:
                    elapsed += attempt_seconds(payload)
                except TransferError as fault:
                    elapsed += fault.elapsed_seconds
                    if (
                        attempt_index >= retry.max_attempts
                        or elapsed >= retry.budget_seconds
                    ):
                        break
                    pause = retry.backoff_seconds(attempt_index)
                    if elapsed + pause >= retry.budget_seconds:
                        break
                    elapsed += pause
                    retries += 1
                    continue
                delivered = True
                break
            uplink_free_at = start + elapsed
        if delivered:
            cumulative += payload
            trace.events.append(
                UploadEvent(
                    time_seconds=uplink_free_at,
                    payload_bytes=payload,
                    cumulative_bytes=cumulative,
                )
            )
        else:
            abandoned += 1
    if registry is not None and retries:
        registry.counter(
            "network_retries_total",
            help="resubmissions after a failed transfer attempt",
            channel=getattr(channel, "name", "channel"),
        ).inc(retries)
    if registry is not None and abandoned:
        registry.counter(
            "network_frames_abandoned_total",
            help="frames that exhausted their retransmission budget",
            scheme=scheme,
        ).inc(abandoned)
    if registry is not None:
        registry.counter(
            "network_payloads_total",
            help="payloads that made it onto the uplink",
            scheme=scheme,
        ).inc(len(trace.events))
        registry.counter(
            "network_frames_dropped_total",
            help="frames dropped because the uplink was backlogged",
            scheme=scheme,
        ).inc(dropped)
        registry.counter(
            "network_stream_bytes_total",
            help="cumulative bytes a simulated capture session uploaded",
            scheme=scheme,
        ).inc(cumulative)
    return trace
