"""Predictive link-quality estimation and the adaptive offload policy.

The fault layer (:mod:`repro.network.faults`) *reacts*: retries burn
budget and the degradation ladder steps down only after attempts have
already failed — wasting bytes and latency exactly when the channel is
worst.  This module adds the production-client move the paper's flaky
mobile uplink calls for: **predict** link quality from recent channel
history and shape the transmission *before* sending.

* :class:`LinkQualityEstimator` — one per channel, fed by the
  :meth:`FaultyChannel.add_observer <repro.network.faults.FaultyChannel>`
  attempt-outcome hook.  Maintains a loss EWMA over good-state attempts,
  a Gilbert–Elliott good/bad posterior whose ``outage_enter`` /
  ``outage_exit`` transition probabilities are inferred from observed
  run lengths (per-attempt transition-count MLE), a throughput EWMA over
  successful attempts, and an RTT estimate from fail-fast outage probes.
  Confidence decays over idle simulated time, blending every prediction
  back toward its prior / stationary value.
* :class:`AdaptiveOffloadPolicy` — consults the estimator *before* each
  transmission and decides: degradation-ladder entry rung (fingerprint
  size k), retry budget, backoff scaling, and — when multiple channel
  presets are registered via :meth:`AdaptiveOffloadPolicy.register_path`
  — LTE-vs-WiFi path selection with hysteresis (a score margin plus a
  minimum dwell) so path flapping is bounded.

Everything here is pure arithmetic over observed outcomes: no RNG is
ever consumed, so wrapping a run with the estimator cannot perturb the
block-seeded fault pattern and every decision is deterministic.

Observability: each :meth:`AdaptiveOffloadPolicy.decide` updates
``link_failure_probability`` / ``link_outage_probability`` /
``link_loss_ewma`` / ``link_throughput_bps`` / ``link_confidence``
gauges and the ``adaptive_decisions_total{action=...}`` counter, and
emits ``adaptive.preemptive_degrade`` / ``adaptive.path_switch``
structured events on action / path changes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.network.faults import RetryPolicy
from repro.obs import current_registry, emit_event
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "AdaptiveConfig",
    "AdaptiveOffloadPolicy",
    "LinkQualityEstimator",
    "OffloadDecision",
]

#: Decision actions, from healthiest to most defensive.
_ACTIONS = ("full", "shade", "floor", "probe")


@dataclass(frozen=True)
class AdaptiveConfig:
    """Tuning knobs shared by the estimator and the policy.

    Thresholds act on the *predicted per-attempt failure probability*
    (outage or loss).  ``shade`` enters the ladder one rung down,
    ``floor`` enters at the cheapest rung, ``probe`` additionally scales
    backoff to sit out a likely outage.  ``extra_attempts`` widens the
    retry budget whenever the policy pre-degrades — attempts at the
    cheap rungs cost few bytes, and the wider budget is what keeps
    delivery rate at or above the reactive baseline.
    """

    # ~14-attempt half-life: slow enough that a lucky run of successes
    # on a 30%-loss link does not wash the estimate out (Bernoulli EWMA
    # std is sqrt(p(1-p) a/(2-a)) ~ 0.07 at p=0.3), fast enough to
    # track a mobility-driven loss ramp within a segment.
    ewma_alpha: float = 0.05
    confidence_halflife_seconds: float = 30.0
    sample_saturation: float = 8.0  # attempts until confidence ~ 1/2
    prior_loss: float = 0.0
    prior_outage_enter: float = 0.0
    prior_outage_exit: float = 0.3  # FaultSpec's default exit rate
    shade_threshold: float = 0.2
    floor_threshold: float = 0.45
    probe_threshold: float = 0.7
    extra_attempts: int = 2
    probe_backoff_scale: float = 2.0
    hysteresis_margin: float = 0.25
    min_dwell_decisions: int = 8

    def __post_init__(self) -> None:
        check_in_range("ewma_alpha", self.ewma_alpha, 1e-9, 1.0)
        check_positive(
            "confidence_halflife_seconds", self.confidence_halflife_seconds
        )
        check_positive("sample_saturation", self.sample_saturation)
        for field in ("prior_loss", "prior_outage_enter"):
            check_in_range(field, getattr(self, field), 0.0, 1.0)
        check_in_range("prior_outage_exit", self.prior_outage_exit, 1e-9, 1.0)
        if not (
            0.0
            < self.shade_threshold
            <= self.floor_threshold
            <= self.probe_threshold
            <= 1.0
        ):
            raise ValueError(
                "thresholds must satisfy 0 < shade <= floor <= probe <= 1, got "
                f"{self.shade_threshold}/{self.floor_threshold}/"
                f"{self.probe_threshold}"
            )
        if self.extra_attempts < 0:
            raise ValueError("extra_attempts must be non-negative")
        if self.probe_backoff_scale < 1.0:
            raise ValueError("probe_backoff_scale must be >= 1")
        if self.hysteresis_margin < 0.0:
            raise ValueError("hysteresis_margin must be non-negative")
        if self.min_dwell_decisions < 0:
            raise ValueError("min_dwell_decisions must be non-negative")


class LinkQualityEstimator:
    """Online link-quality model fed by real transfer-attempt outcomes.

    Feed it with :meth:`observe_attempt` — directly, or by registering
    it on a :class:`repro.network.faults.FaultyChannel` via
    ``channel.add_observer(estimator)``.  Idle simulated time between
    queries goes through :meth:`advance`; predictions decay toward
    their priors with a half-life of
    ``config.confidence_halflife_seconds`` while nothing is observed.

    The Gilbert–Elliott inference leans on a structural fact of the
    fault model: every bad-state attempt fails fast as an ``"outage"``,
    so the hidden chain state is directly observable per attempt and the
    transition probabilities are plain run-length MLEs —
    ``enter = N(good→bad) / N(good→·)`` and
    ``exit = N(bad→good) / N(bad→·)``.
    """

    def __init__(
        self,
        channel_name: str = "channel",
        config: AdaptiveConfig | None = None,
        throughput_prior_bps: float = 0.0,
    ) -> None:
        self.channel_name = channel_name
        self.config = config or AdaptiveConfig()
        self.throughput_prior_bps = float(throughput_prior_bps)
        # Gilbert–Elliott transition counts over consecutive attempts.
        self._good_to_bad = 0
        self._good_to_good = 0
        self._bad_to_good = 0
        self._bad_to_bad = 0
        self._last_bad: bool | None = None
        # EWMAs (None until the first sample lands).
        self._loss_ewma: float | None = None
        self._throughput_ewma: float | None = None
        self._rtt_ewma: float | None = None
        # Simulated clock: observed attempt time plus explicit idle.
        self._clock = 0.0
        self._last_observed_at = 0.0
        self._attempts = 0

    # -- feeding ------------------------------------------------------

    def observe_attempt(
        self,
        kind: str,
        num_bytes: int,
        elapsed_seconds: float,
        direction: str = "up",
    ) -> None:
        """Fold one resolved transfer attempt into the model.

        ``kind`` is ``"ok"``/``"dip"`` on success or the
        :class:`~repro.network.faults.TransferError` kind on failure;
        the signature matches the ``FaultyChannel`` observer hook.
        """
        alpha = self.config.ewma_alpha
        bad = kind == "outage"
        if self._last_bad is not None:
            if self._last_bad and bad:
                self._bad_to_bad += 1
            elif self._last_bad:
                self._bad_to_good += 1
            elif bad:
                self._good_to_bad += 1
            else:
                self._good_to_good += 1
        self._last_bad = bad
        if bad:
            # Fail-fast outage probes cost exactly one RTT of simulated
            # time (zero for serialization-only legs — skip those).
            if elapsed_seconds > 0.0:
                self._rtt_ewma = _ewma(self._rtt_ewma, elapsed_seconds, alpha)
        else:
            # Loss EWMA is conditioned on the good state: outages are
            # modeled by the chain, not the loss rate.
            self._loss_ewma = _ewma(
                self._loss_ewma, 1.0 if kind == "loss" else 0.0, alpha
            )
            if kind != "loss" and num_bytes > 0 and elapsed_seconds > 0.0:
                self._throughput_ewma = _ewma(
                    self._throughput_ewma,
                    num_bytes / elapsed_seconds,
                    alpha,
                )
        self._attempts += 1
        self._clock += max(0.0, float(elapsed_seconds))
        self._last_observed_at = self._clock

    # The estimator itself is a valid FaultyChannel observer.
    __call__ = observe_attempt

    def advance(self, seconds: float) -> None:
        """Let ``seconds`` of simulated time pass with no attempts."""
        if seconds < 0:
            raise ValueError(f"seconds must be non-negative, got {seconds}")
        self._clock += float(seconds)

    # -- inferred state ------------------------------------------------

    @property
    def attempts_observed(self) -> int:
        return self._attempts

    @property
    def in_outage(self) -> bool:
        """Whether the most recent attempt saw the bad state."""
        return bool(self._last_bad)

    @property
    def confidence(self) -> float:
        """How much to trust conditional estimates over priors, in [0, 1].

        The product of a sample factor ``n / (n + saturation)`` (few
        attempts → low trust) and an idle decay
        ``0.5 ** (idle / halflife)`` (stale attempts → low trust).
        """
        if self._attempts == 0:
            return 0.0
        sample = self._attempts / (self._attempts + self.config.sample_saturation)
        idle = max(0.0, self._clock - self._last_observed_at)
        decay = 0.5 ** (idle / self.config.confidence_halflife_seconds)
        return sample * decay

    @property
    def loss_rate(self) -> float:
        """Predicted good-state loss probability (confidence-blended)."""
        if self._loss_ewma is None:
            return self.config.prior_loss
        c = self.confidence
        return c * self._loss_ewma + (1.0 - c) * self.config.prior_loss

    @property
    def outage_enter_hat(self) -> float:
        """MLE of the good→bad transition probability."""
        total = self._good_to_bad + self._good_to_good
        if total == 0:
            return self.config.prior_outage_enter
        return self._good_to_bad / total

    @property
    def outage_exit_hat(self) -> float:
        """MLE of the bad→good transition probability."""
        total = self._bad_to_good + self._bad_to_bad
        if total == 0:
            return self.config.prior_outage_exit
        return self._bad_to_good / total

    @property
    def stationary_outage_probability(self) -> float:
        """π_bad = enter / (enter + exit) under the inferred chain."""
        enter = self.outage_enter_hat
        exit_ = self.outage_exit_hat
        if enter + exit_ <= 0.0:
            return 0.0
        return enter / (enter + exit_)

    @property
    def outage_probability(self) -> float:
        """Predicted probability the *next* attempt lands in the bad state.

        Conditioned on the last observed state (``1 - exit`` while in an
        outage, ``enter`` otherwise), decayed toward the stationary
        distribution as confidence fades — exactly the chain's own
        forgetting behavior over unobserved steps.
        """
        conditional = (
            1.0 - self.outage_exit_hat if self.in_outage else self.outage_enter_hat
        )
        c = self.confidence
        return c * conditional + (1.0 - c) * self.stationary_outage_probability

    @property
    def failure_probability(self) -> float:
        """Predicted probability the next attempt fails (outage or loss)."""
        p_out = self.outage_probability
        return p_out + (1.0 - p_out) * self.loss_rate

    @property
    def throughput_bps(self) -> float:
        """Predicted uplink throughput, bytes/second (confidence-blended)."""
        if self._throughput_ewma is None:
            return self.throughput_prior_bps
        c = self.confidence
        return c * self._throughput_ewma + (1.0 - c) * self.throughput_prior_bps

    @property
    def rtt_seconds(self) -> float:
        """Observed RTT from outage fail-fast probes (0 until one lands)."""
        return self._rtt_ewma if self._rtt_ewma is not None else 0.0

    def snapshot(self) -> dict:
        """Estimator state as plain scalars (gauges, debugging, reports)."""
        return {
            "channel": self.channel_name,
            "attempts": self._attempts,
            "in_outage": self.in_outage,
            "confidence": self.confidence,
            "loss_rate": self.loss_rate,
            "outage_enter_hat": self.outage_enter_hat,
            "outage_exit_hat": self.outage_exit_hat,
            "outage_probability": self.outage_probability,
            "failure_probability": self.failure_probability,
            "throughput_bps": self.throughput_bps,
            "rtt_seconds": self.rtt_seconds,
        }


def _ewma(current: float | None, sample: float, alpha: float) -> float:
    if current is None:
        return float(sample)
    return (1.0 - alpha) * current + alpha * float(sample)


@dataclass(frozen=True)
class OffloadDecision:
    """What the policy chose for one upcoming transmission."""

    action: str  # "full" | "shade" | "floor" | "probe"
    entry_rung: int  # degradation-ladder index to start at
    extra_attempts: int  # widening of the retry budget
    backoff_scale: float  # multiplier on base backoff
    failure_probability: float  # the prediction the decision came from
    path: str | None = None  # chosen path name (multi-path mode only)
    switched_path: bool = False
    channel: object | None = dataclasses.field(
        default=None, compare=False, repr=False
    )

    def adapt_retry_policy(self, base: RetryPolicy | None = None) -> RetryPolicy:
        """The base retry policy reshaped to this decision."""
        base = base or RetryPolicy()
        if self.extra_attempts == 0 and self.backoff_scale == 1.0:
            return base
        return dataclasses.replace(
            base,
            max_attempts=base.max_attempts + self.extra_attempts,
            base_backoff_seconds=base.base_backoff_seconds * self.backoff_scale,
        )


class AdaptiveOffloadPolicy:
    """Decide fingerprint size, retry budget, and path *before* sending.

    Two modes share one decision table:

    * **single-path** — call :meth:`decide` with the channel about to be
      used; the policy lazily attaches a :class:`LinkQualityEstimator`
      to it (via the ``FaultyChannel`` observer hook when available).
    * **multi-path** — :meth:`register_path` LTE / WiFi style presets up
      front; :meth:`decide` then also picks the path, with hysteresis:
      a candidate must beat the current path's score by
      ``hysteresis_margin`` *and* the current path must have been held
      for ``min_dwell_decisions`` decisions, so flapping is bounded to
      at most one switch per dwell window.

    Path score is ``predicted_throughput × (1 − failure_probability)``
    — expected useful bytes per second of air time.
    """

    def __init__(
        self,
        config: AdaptiveConfig | None = None,
    ) -> None:
        self.config = config or AdaptiveConfig()
        self._estimators: dict[str, LinkQualityEstimator] = {}
        self._paths: dict[str, object] = {}
        self._current_path: str | None = None
        self._dwell = 0
        self._path_switches = 0
        self._last_action: str | None = None

    # -- wiring --------------------------------------------------------

    def register_path(self, name: str, channel) -> None:
        """Add (or replace) a selectable uplink path.

        Replacing keeps the existing estimator — a mobility handoff to a
        new channel segment carries the learned link history forward —
        but re-attaches its observer to the new channel.
        """
        estimator = self._estimators.get(name)
        old = self._paths.get(name)
        if estimator is None:
            estimator = LinkQualityEstimator(
                name,
                self.config,
                throughput_prior_bps=getattr(channel, "bytes_per_second", 0.0),
            )
            self._estimators[name] = estimator
        elif old is not None and hasattr(old, "remove_observer"):
            old.remove_observer(estimator)
        if hasattr(channel, "add_observer"):
            channel.add_observer(estimator)
        self._paths[name] = channel
        if self._current_path is None:
            self._current_path = name

    @property
    def paths(self) -> tuple[str, ...]:
        return tuple(self._paths)

    @property
    def current_path(self) -> str | None:
        return self._current_path

    @property
    def path_switches(self) -> int:
        return self._path_switches

    def path_channel(self, name: str):
        return self._paths[name]

    def estimator_for(self, channel) -> LinkQualityEstimator:
        """The estimator watching ``channel`` (attached on first sight)."""
        name = getattr(channel, "name", "channel")
        estimator = self._estimators.get(name)
        if estimator is None:
            estimator = LinkQualityEstimator(
                name,
                self.config,
                throughput_prior_bps=getattr(channel, "bytes_per_second", 0.0),
            )
            self._estimators[name] = estimator
            if hasattr(channel, "add_observer"):
                channel.add_observer(estimator)
        return estimator

    def advance(self, seconds: float) -> None:
        """Propagate idle simulated time to every estimator."""
        for estimator in self._estimators.values():
            estimator.advance(seconds)

    def snapshot(self) -> dict:
        """Per-path estimator snapshots plus path-selection state."""
        return {
            "current_path": self._current_path,
            "path_switches": self._path_switches,
            "estimators": {
                name: est.snapshot() for name, est in self._estimators.items()
            },
        }

    # -- the decision --------------------------------------------------

    def _score(self, name: str) -> float:
        estimator = self._estimators[name]
        return estimator.throughput_bps * (1.0 - estimator.failure_probability)

    def _choose_path(self) -> tuple[str, bool]:
        current = self._current_path
        assert current is not None
        self._dwell += 1
        if len(self._paths) == 1 or self._dwell <= self.config.min_dwell_decisions:
            return current, False
        current_score = self._score(current)
        best_name, best_score = current, current_score
        for name in self._paths:
            score = self._score(name)
            if score > best_score:
                best_name, best_score = name, score
        if best_name == current:
            return current, False
        if best_score <= current_score * (1.0 + self.config.hysteresis_margin):
            return current, False
        emit_event(
            "adaptive.path_switch",
            old_path=current,
            new_path=best_name,
            old_score=round(current_score, 3),
            new_score=round(best_score, 3),
            dwell_decisions=self._dwell,
        )
        registry = current_registry()
        if registry is not None:
            registry.counter(
                "adaptive_path_switches_total",
                help="uplink path changes made by the adaptive policy",
            ).inc()
        self._current_path = best_name
        self._path_switches += 1
        self._dwell = 0
        return best_name, True

    def decide(
        self,
        channel=None,
        ladder_rungs: int = 3,
    ) -> OffloadDecision:
        """Shape the next transmission from the current link prediction.

        With registered paths, ``channel`` is ignored and the chosen
        path's channel comes back on ``decision.channel``; otherwise the
        passed channel is consulted (and returned) directly.
        """
        switched = False
        path_name = None
        if self._paths:
            path_name, switched = self._choose_path()
            channel = self._paths[path_name]
            estimator = self._estimators[path_name]
        elif channel is None:
            raise ValueError("decide() needs a channel or registered paths")
        else:
            estimator = self.estimator_for(channel)
        p_fail = estimator.failure_probability
        cfg = self.config
        rungs = max(1, int(ladder_rungs))
        if p_fail >= cfg.probe_threshold:
            action = "probe"
            entry = rungs - 1
            extra = cfg.extra_attempts
            scale = cfg.probe_backoff_scale
        elif p_fail >= cfg.floor_threshold:
            action = "floor"
            entry = rungs - 1
            extra = cfg.extra_attempts
            scale = 1.0
        elif p_fail >= cfg.shade_threshold:
            action = "shade"
            entry = min(1, rungs - 1)
            extra = cfg.extra_attempts
            scale = 1.0
        else:
            action = "full"
            entry = 0
            extra = 0
            scale = 1.0
        self._instrument(estimator, action, p_fail, entry)
        return OffloadDecision(
            action=action,
            entry_rung=entry,
            extra_attempts=extra,
            backoff_scale=scale,
            failure_probability=p_fail,
            path=path_name,
            switched_path=switched,
            channel=channel,
        )

    def _instrument(
        self,
        estimator: LinkQualityEstimator,
        action: str,
        p_fail: float,
        entry: int,
    ) -> None:
        registry = current_registry()
        if registry is not None:
            labels = {"channel": estimator.channel_name}
            registry.counter(
                "adaptive_decisions_total",
                help="pre-transmission decisions by the adaptive policy",
                action=action,
            ).inc()
            registry.gauge(
                "link_failure_probability",
                help="predicted per-attempt failure probability",
                **labels,
            ).set(p_fail)
            registry.gauge(
                "link_outage_probability",
                help="predicted probability the next attempt hits an outage",
                **labels,
            ).set(estimator.outage_probability)
            registry.gauge(
                "link_loss_ewma",
                help="estimated good-state loss rate",
                **labels,
            ).set(estimator.loss_rate)
            registry.gauge(
                "link_throughput_bps",
                help="estimated uplink throughput, bytes per second",
                **labels,
            ).set(estimator.throughput_bps)
            registry.gauge(
                "link_confidence",
                help="estimator confidence in conditional predictions",
                **labels,
            ).set(estimator.confidence)
        if action != self._last_action:
            if action != "full":
                emit_event(
                    "adaptive.preemptive_degrade",
                    channel=estimator.channel_name,
                    action=action,
                    entry_rung=entry,
                    failure_probability=round(p_fail, 4),
                )
            self._last_action = action
