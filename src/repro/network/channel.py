"""Uplink channel: bandwidth, propagation delay, jitter.

"Several factors including the distance between the device and cloud,
network bandwidth and channel, and sheer data quantity contribute to"
end-to-end latency; the model keeps exactly those three terms.

Mobile links are asymmetric: the ``downlink_mbps`` field (default
``None`` = symmetric) rates the response leg separately, and every
transfer is recorded with a ``direction`` label so upload accounting
(``network_upload_bytes*``) only ever counts bytes the device put on
the air — responses land in ``network_download_bytes_total``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import DEFAULT_BYTE_BUCKETS, current_registry, record_span
from repro.util.validation import check_positive

__all__ = ["UplinkChannel", "CHANNEL_PRESETS", "resolve_channel"]


def _record_transfer(
    channel_name: str, num_bytes: int, seconds: float, direction: str
) -> None:
    """Report a transfer into the contextual registry, if one is active.

    The channel model is a frozen value object used in tight simulation
    loops, so it carries no registry of its own: outside a
    :func:`repro.obs.use_registry` block the metrics are a no-op.

    Each transfer is also recorded as a ``network.transfer`` span whose
    duration is the *simulated* seconds (no wall clock elapses here).
    Inside a :func:`repro.obs.use_trace_context` block the span joins
    the originating query's trace — how a fingerprint's channel leg
    correlates with the frame that produced it; without an ambient span,
    context, or collector, :func:`repro.obs.record_span` is a no-op too.

    ``direction`` separates the two legs of a round trip: only ``"up"``
    transfers count as uploads (the response leg used to inflate
    ``network_upload_bytes_total``).
    """
    record_span(
        "network.transfer",
        seconds,
        channel=channel_name,
        bytes=int(num_bytes),
        direction=direction,
    )
    registry = current_registry()
    if registry is None:
        return
    registry.histogram(
        "network_transfer_seconds",
        help="one-way transfer latency per payload",
        channel=channel_name,
        direction=direction,
    ).observe(seconds)
    if direction == "up":
        registry.histogram(
            "network_upload_bytes",
            help="payload size per upload",
            buckets=DEFAULT_BYTE_BUCKETS,
            channel=channel_name,
        ).observe(num_bytes)
        registry.counter(
            "network_upload_bytes_total",
            help="cumulative bytes placed on the uplink",
            channel=channel_name,
        ).inc(num_bytes)
    else:
        registry.counter(
            "network_download_bytes_total",
            help="cumulative bytes received on the downlink",
            channel=channel_name,
        ).inc(num_bytes)


@dataclass(frozen=True)
class UplinkChannel:
    """A fixed-rate link with additive RTT and lognormal jitter.

    ``downlink_mbps`` rates the response leg; ``None`` means the link is
    symmetric (the uplink rate applies both ways).
    """

    name: str
    bandwidth_mbps: float
    rtt_ms: float = 40.0
    jitter_sigma: float = 0.2  # lognormal sigma on the RTT term
    downlink_mbps: float | None = None

    def __post_init__(self) -> None:
        check_positive("bandwidth_mbps", self.bandwidth_mbps)
        check_positive("rtt_ms", self.rtt_ms)
        if self.downlink_mbps is not None:
            check_positive("downlink_mbps", self.downlink_mbps)

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_mbps * 1e6 / 8.0

    @property
    def downlink_bytes_per_second(self) -> float:
        rate = (
            self.bandwidth_mbps if self.downlink_mbps is None else self.downlink_mbps
        )
        return rate * 1e6 / 8.0

    def serialization_seconds(self, num_bytes: int) -> float:
        """Pure transmission time for an uplink payload."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / self.bytes_per_second

    def response_serialization_seconds(self, num_bytes: int) -> float:
        """Pure transmission time for a downlink payload."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / self.downlink_bytes_per_second

    def _one_way_seconds(
        self,
        serialization: float,
        num_bytes: int,
        rng: np.random.Generator | None,
        direction: str,
    ) -> float:
        base_half_rtt = self.rtt_ms / 2e3
        if rng is None or self.jitter_sigma == 0:
            seconds = serialization + base_half_rtt
        else:
            jitter = float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))
            seconds = serialization + base_half_rtt * jitter
        _record_transfer(self.name, num_bytes, seconds, direction)
        return seconds

    def transfer_seconds(
        self, num_bytes: int, rng: np.random.Generator | None = None
    ) -> float:
        """One-way upload latency: serialization + half-RTT (+ jitter)."""
        return self._one_way_seconds(
            self.serialization_seconds(num_bytes), num_bytes, rng, "up"
        )

    def response_seconds(
        self, num_bytes: int, rng: np.random.Generator | None = None
    ) -> float:
        """One-way download latency at the downlink rate."""
        return self._one_way_seconds(
            self.response_serialization_seconds(num_bytes), num_bytes, rng, "down"
        )

    def round_trip_seconds(
        self,
        upload_bytes: int,
        response_bytes: int = 256,
        server_seconds: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Query latency: upload + server compute + (small) response."""
        up = self.transfer_seconds(upload_bytes, rng)
        down = self.response_seconds(response_bytes, rng)
        return up + server_seconds + down


CHANNEL_PRESETS: dict[str, UplinkChannel] = {
    # Typical sustained rates (not headline peaks); cellular links are
    # asymmetric — downlink a few times the uplink — while WiFi is
    # symmetric enough to model with one rate.
    "3g": UplinkChannel(name="3g", bandwidth_mbps=1.0, rtt_ms=120.0, downlink_mbps=4.0),
    "lte": UplinkChannel(
        name="lte", bandwidth_mbps=8.0, rtt_ms=60.0, downlink_mbps=24.0
    ),
    "wifi": UplinkChannel(name="wifi", bandwidth_mbps=30.0, rtt_ms=15.0),
}


def resolve_channel(name: str) -> UplinkChannel:
    """Look up a channel preset by name, with a helpful error.

    The single resolution point for CLI ``--channel`` flags (experiment
    subcommands, ``repro serve``): unknown names fail fast listing the
    presets instead of surfacing a bare ``KeyError`` deep in a driver.
    """
    try:
        return CHANNEL_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown channel {name!r}; available presets: "
            f"{', '.join(sorted(CHANNEL_PRESETS))}"
        ) from None
