"""Uplink channel: bandwidth, propagation delay, jitter.

"Several factors including the distance between the device and cloud,
network bandwidth and channel, and sheer data quantity contribute to"
end-to-end latency; the model keeps exactly those three terms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs import DEFAULT_BYTE_BUCKETS, current_registry, record_span
from repro.util.validation import check_positive

__all__ = ["UplinkChannel", "CHANNEL_PRESETS"]


def _record_transfer(channel_name: str, num_bytes: int, seconds: float) -> None:
    """Report a transfer into the contextual registry, if one is active.

    The channel model is a frozen value object used in tight simulation
    loops, so it carries no registry of its own: outside a
    :func:`repro.obs.use_registry` block the metrics are a no-op.

    Each transfer is also recorded as a ``network.transfer`` span whose
    duration is the *simulated* seconds (no wall clock elapses here).
    Inside a :func:`repro.obs.use_trace_context` block the span joins
    the originating query's trace — how a fingerprint's channel leg
    correlates with the frame that produced it; without an ambient span,
    context, or collector, :func:`repro.obs.record_span` is a no-op too.
    """
    record_span(
        "network.transfer",
        seconds,
        channel=channel_name,
        bytes=int(num_bytes),
    )
    registry = current_registry()
    if registry is None:
        return
    registry.histogram(
        "network_transfer_seconds",
        help="one-way upload latency per payload",
        channel=channel_name,
    ).observe(seconds)
    registry.histogram(
        "network_upload_bytes",
        help="payload size per upload",
        buckets=DEFAULT_BYTE_BUCKETS,
        channel=channel_name,
    ).observe(num_bytes)
    registry.counter(
        "network_upload_bytes_total",
        help="cumulative bytes placed on the uplink",
        channel=channel_name,
    ).inc(num_bytes)


@dataclass(frozen=True)
class UplinkChannel:
    """A fixed-rate uplink with additive RTT and lognormal jitter."""

    name: str
    bandwidth_mbps: float
    rtt_ms: float = 40.0
    jitter_sigma: float = 0.2  # lognormal sigma on the RTT term

    def __post_init__(self) -> None:
        check_positive("bandwidth_mbps", self.bandwidth_mbps)
        check_positive("rtt_ms", self.rtt_ms)

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_mbps * 1e6 / 8.0

    def serialization_seconds(self, num_bytes: int) -> float:
        """Pure transmission time for a payload."""
        if num_bytes < 0:
            raise ValueError(f"num_bytes must be non-negative, got {num_bytes}")
        return num_bytes / self.bytes_per_second

    def transfer_seconds(
        self, num_bytes: int, rng: np.random.Generator | None = None
    ) -> float:
        """One-way upload latency: serialization + half-RTT (+ jitter)."""
        base = self.serialization_seconds(num_bytes) + self.rtt_ms / 2e3
        if rng is None or self.jitter_sigma == 0:
            _record_transfer(self.name, num_bytes, base)
            return base
        jitter = float(rng.lognormal(mean=0.0, sigma=self.jitter_sigma))
        seconds = self.serialization_seconds(num_bytes) + self.rtt_ms / 2e3 * jitter
        _record_transfer(self.name, num_bytes, seconds)
        return seconds

    def round_trip_seconds(
        self,
        upload_bytes: int,
        response_bytes: int = 256,
        server_seconds: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Query latency: upload + server compute + (small) response."""
        up = self.transfer_seconds(upload_bytes, rng)
        down = self.transfer_seconds(response_bytes, rng)
        return up + server_seconds + down


CHANNEL_PRESETS: dict[str, UplinkChannel] = {
    # Typical sustained uplink rates (not headline peaks).
    "3g": UplinkChannel(name="3g", bandwidth_mbps=1.0, rtt_ms=120.0),
    "lte": UplinkChannel(name="lte", bandwidth_mbps=8.0, rtt_ms=60.0),
    "wifi": UplinkChannel(name="wifi", bandwidth_mbps=30.0, rtt_ms=15.0),
}
