"""Deterministic process-pool mapping for the offline pipeline.

The server-side workloads of the reproduction — wardriving hundreds of
images into the uniqueness oracle, replaying 500 queries through the
client pipeline, building the Fig. 13 retrieval workload — are
embarrassingly parallel per item.  :func:`parallel_map` runs them
across a process pool while keeping three guarantees the rest of the
codebase relies on:

* **Determinism.**  Results come back in item order, and every form of
  nondeterminism is pinned down: items are dispatched in fixed chunks,
  per-item randomness comes from :func:`shard_seeds` (named
  :func:`repro.util.rng.rng_for` streams, never a shared sequential
  generator), and worker metrics merge in chunk order — so
  ``workers=N`` output is bit-identical to ``workers=1``.
* **In-process fallback.**  ``workers=1`` (the default everywhere)
  runs the exact same chunked code path inline — no fork, no pickling
  of ``shared`` — so library users who never ask for parallelism pay
  nothing and tests exercise one code path.
* **Observability.**  Each chunk executes under a fresh contextual
  :class:`repro.obs.MetricsRegistry` (see :func:`repro.obs.use_registry`);
  the chunk's snapshot is merged back into the parent registry after
  the chunk completes.  Components constructed *inside* the worker
  (e.g. via ``chunk_setup``) therefore report into the parent exactly
  as if they had run serially.  Components constructed in the parent
  and shipped via ``shared`` keep their own bound registries — in a
  worker process those records stay in the worker's copy; construct
  instrumented components in ``chunk_setup`` when their metrics matter.
  Traces get the same treatment: when the caller has a
  :class:`repro.obs.TraceCollector` installed (see
  :func:`repro.obs.use_collector`), each chunk runs under a fresh
  collector whose finished root spans — labeled with the producing
  ``worker`` pid and ``shard`` (chunk) index — are shipped back and
  merged in chunk order, so a ``workers=N`` run retains the same set
  of root spans as ``workers=1``.  Structured events follow suit: with
  a contextual :class:`repro.obs.EventLog` installed (see
  :func:`repro.obs.use_event_log`), each chunk emits into a fresh log
  whose records ship back and merge in chunk order.

Worker functions must be module-level (picklable); heavyweight
read-only context travels once per worker through ``shared`` and is
read back with :func:`get_shared`.
"""

from __future__ import annotations

import math
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Sequence

from contextlib import ExitStack

from repro.obs import (
    EventLog,
    MetricsRegistry,
    TraceCollector,
    current_collector,
    current_event_log,
    isolated_trace_state,
    resolve_registry,
    use_collector,
    use_event_log,
    use_registry,
)
from repro.util.rng import derive_seed

__all__ = ["default_workers", "get_shared", "parallel_map", "shard_seeds"]

# Per-process shared context, installed by the pool initializer (worker
# processes) or directly by parallel_map (in-process fallback).
_SHARED: Any = None


def get_shared() -> Any:
    """The ``shared`` object passed to the enclosing :func:`parallel_map`.

    Valid only inside a worker function (or ``chunk_setup``) during a
    ``parallel_map`` call that supplied ``shared=...``.
    """
    return _SHARED


def default_workers() -> int:
    """Usable CPU count (cgroup/affinity aware), at least 1."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # platforms without sched_getaffinity
        return max(1, os.cpu_count() or 1)


def shard_seeds(seed: int, name: str, count: int) -> list[int]:
    """``count`` independent per-item child seeds for one parallel stage.

    The seeding discipline of the parallel layer: a stage that needs
    randomness derives one child seed per item up front
    (``shard_seeds(seed, "stage", n)[i]``) instead of consuming a shared
    generator sequentially, so item ``i`` sees the same stream no matter
    which worker runs it or how items are chunked.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [derive_seed(seed, f"{name}/{index}") for index in range(count)]


def _set_shared(shared: Any) -> None:
    global _SHARED
    _SHARED = shared


def _run_chunk(
    fn: Callable[..., Any],
    chunk: Sequence[Any],
    chunk_setup: Callable[[], Any] | None,
    chunk_index: int = 0,
    collect_traces: bool = False,
    collect_events: bool = False,
) -> tuple[
    list[Any],
    dict[str, Any],
    list[dict[str, Any]] | None,
    dict[str, Any] | None,
]:
    """Run one chunk under fresh contextual registry/collector; return states.

    ``collect_traces`` is set when the *caller* had a collector
    installed: the chunk then gathers its finished root spans, labels
    them with this worker's pid and the chunk index, and returns them
    as picklable state for the parent to merge — otherwise span
    shipping is skipped entirely.  ``collect_events`` does the same for
    the caller's contextual :class:`repro.obs.EventLog`: the chunk runs
    under a fresh log whose records (stamped with this worker's pid and
    the chunk index) ship back for chunk-ordered merging.
    """
    registry = MetricsRegistry()
    collector = TraceCollector(registry=registry) if collect_traces else None
    event_log = EventLog(registry=registry) if collect_events else None
    with ExitStack() as stack:
        # Forked workers inherit the parent's propagation stacks (and the
        # in-process fallback runs on them directly); clear both cases so
        # chunk spans root identically regardless of worker count.
        stack.enter_context(isolated_trace_state())
        stack.enter_context(use_registry(registry))
        if collector is not None:
            stack.enter_context(use_collector(collector))
        if event_log is not None:
            stack.enter_context(use_event_log(event_log))
        if chunk_setup is None:
            results = [fn(item) for item in chunk]
        else:
            context = chunk_setup()
            results = [fn(item, context) for item in chunk]
    trace_state: list[dict[str, Any]] | None = None
    if collector is not None:
        for root in collector.roots:
            root.attributes.setdefault("worker", os.getpid())
            root.attributes.setdefault("shard", chunk_index)
        trace_state = collector.state()
    event_state: dict[str, Any] | None = None
    if event_log is not None:
        for record in event_log.records:
            record.setdefault("worker", os.getpid())
            record.setdefault("shard", chunk_index)
        event_state = event_log.state()
    return results, registry.state(), trace_state, event_state


def _pool_context() -> multiprocessing.context.BaseContext:
    # Fork keeps worker start cheap (no re-import of numpy/scipy) and is
    # available everywhere this repo's CI runs; fall back to the platform
    # default elsewhere.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def parallel_map(
    fn: Callable[..., Any],
    items: Iterable[Any],
    workers: int = 1,
    *,
    shared: Any = None,
    chunk_setup: Callable[[], Any] | None = None,
    chunk_size: int | None = None,
    registry: MetricsRegistry | None = None,
) -> list[Any]:
    """Map ``fn`` over ``items``, optionally across a process pool.

    ``fn(item)`` is called once per item (``fn(item, context)`` when
    ``chunk_setup`` is given — the setup callable runs once per chunk,
    inside the chunk's registry scope, and its return value is passed to
    every call; use it to build per-worker state like a client whose
    instruments must land in the merged registry).  Results return in
    item order.

    ``workers <= 1`` runs everything in-process through the same chunked
    path.  ``shared`` is delivered once per worker process (via the pool
    initializer) and read back with :func:`get_shared`; keep it
    read-only — worker-side mutations never propagate back.

    Metrics recorded into the contextual registry inside each chunk are
    merged (in chunk order, hence deterministically) into ``registry``,
    resolved per :func:`repro.obs.resolve_registry`.  Root spans
    finished inside each chunk merge the same way into the caller's
    contextual :class:`repro.obs.TraceCollector`, when one is installed.
    """
    items = list(items)
    target = resolve_registry(registry)
    collector = current_collector()
    event_log = current_event_log()
    if not items:
        return []
    workers = max(1, min(int(workers), len(items)))
    if chunk_size is None:
        # One chunk per worker: amortizes chunk_setup and keeps the
        # number of registry merges (and their reservoir truncation)
        # independent of item count.
        chunk_size = math.ceil(len(items) / workers)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    chunks = [items[start : start + chunk_size] for start in range(0, len(items), chunk_size)]

    collect_traces = collector is not None
    collect_events = event_log is not None
    if workers == 1:
        previous = _SHARED
        _set_shared(shared)
        try:
            outcomes = [
                _run_chunk(
                    fn, chunk, chunk_setup, index, collect_traces, collect_events
                )
                for index, chunk in enumerate(chunks)
            ]
        finally:
            _set_shared(previous)
    else:
        with ProcessPoolExecutor(
            max_workers=workers,
            mp_context=_pool_context(),
            initializer=_set_shared,
            initargs=(shared,),
        ) as pool:
            futures = [
                pool.submit(
                    _run_chunk,
                    fn,
                    chunk,
                    chunk_setup,
                    index,
                    collect_traces,
                    collect_events,
                )
                for index, chunk in enumerate(chunks)
            ]
            # Collect in submission order regardless of completion order.
            outcomes = [future.result() for future in futures]

    results: list[Any] = []
    for chunk_results, chunk_state, chunk_traces, chunk_events in outcomes:
        results.extend(chunk_results)
        target.merge_state(chunk_state)
        if collector is not None and chunk_traces:
            collector.merge_state(chunk_traces)
        if event_log is not None and chunk_events:
            event_log.merge_state(chunk_events)
    return results
