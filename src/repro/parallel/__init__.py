"""``repro.parallel`` — deterministic multi-core execution.

A seeded, chunked process-pool map (:func:`parallel_map`) with an
in-process ``workers=1`` fallback and metrics-registry merge, plus the
per-item seed-sharding helper (:func:`shard_seeds`) that keeps parallel
runs bit-identical to serial ones.  See DESIGN.md ("Parallel execution
layer") for the seeding and merge semantics.
"""

from repro.parallel.pool import default_workers, get_shared, parallel_map, shard_seeds

__all__ = ["default_workers", "get_shared", "parallel_map", "shard_seeds"]
