"""``repro top`` — a live plain-text/curses view of a serving fleet.

Renders a metrics snapshot (the :meth:`repro.obs.MetricsRegistry.to_dict`
JSON that ``--metrics-json`` / ``--watch-json`` write) plus an optional
NDJSON event log into a terminal dashboard: fleet totals, a per-shard
table (queue depth, saturation, admitted/rejected/served/failed,
e2e latency quantiles from the streaming sketch), SLO budget/burn
gauges, client-side frame quantiles, and the most recent events.

Everything is a pure function of the snapshot dict —
:func:`render_dashboard` takes JSON in, returns a string — so the CLI
loop is just "read file, render, repaint", testable without a terminal.
The curses path is a thin repaint wrapper; plain mode (no curses, not a
tty, or ``--plain``) prints the same frame.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any

__all__ = ["parse_metric_key", "render_dashboard", "run_top"]


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """``'name{k=v,k2=v2}'`` → ``('name', {'k': 'v', 'k2': 'v2'})``.

    Inverse of the key rendering in :meth:`MetricsRegistry.to_dict`
    (label values in this codebase never contain ``,`` or ``}``).
    """
    if "{" not in key:
        return key, {}
    name, _, body = key.partition("{")
    labels: dict[str, str] = {}
    for part in body.rstrip("}").split(","):
        if not part:
            continue
        label, _, value = part.partition("=")
        labels[label] = value
    return name, labels


def _find(
    section: dict[str, Any], name: str, **want: str
) -> list[tuple[dict[str, str], dict[str, Any]]]:
    """All entries of ``name`` whose labels include ``want``; sorted."""
    out = []
    for key, entry in section.items():
        entry_name, labels = parse_metric_key(key)
        if entry_name != name:
            continue
        if any(labels.get(k) != v for k, v in want.items()):
            continue
        out.append((labels, entry))
    return sorted(out, key=lambda pair: sorted(pair[0].items()))


def _value(section: dict[str, Any], name: str, **want: str) -> float:
    found = _find(section, name, **want)
    return float(found[0][1]["value"]) if found else 0.0


def _fmt_seconds(seconds: float) -> str:
    if seconds <= 0.0:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds:.2f}s"


def _bar(fraction: float, width: int = 10) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def _shard_rows(snapshot: dict[str, Any]) -> list[str]:
    gauges = snapshot.get("gauges", {})
    counters = snapshot.get("counters", {})
    sketches = snapshot.get("sketches", {})
    shards = sorted(
        labels["shard"]
        for labels, _ in _find(gauges, "serving_shard_queue_depth")
        if "shard" in labels
    )
    if not shards:
        return []
    rows = [
        f"  {'shard':<10} {'depth':>5} {'saturation':>12} {'admit':>7} "
        f"{'reject':>7} {'served':>7} {'failed':>7} "
        f"{'p50':>8} {'p99':>8} {'p999':>8}"
    ]
    for shard in shards:
        saturation = _value(gauges, "serving_shard_saturation", shard=shard)
        e2e = _find(sketches, "serving_e2e_seconds", shard=shard)
        p50 = p99 = p999 = 0.0
        if e2e:
            entry = e2e[0][1]
            p50, p99, p999 = entry["p50"], entry["p99"], entry["p999"]
        rows.append(
            f"  {shard:<10} "
            f"{_value(gauges, 'serving_shard_queue_depth', shard=shard):>5.0f} "
            f"{_bar(saturation)} {saturation * 100:>3.0f}% "
            f"{_value(counters, 'serving_queries_admitted_total', shard=shard):>7.0f} "
            f"{_value(counters, 'serving_queries_rejected_total', shard=shard):>7.0f} "
            f"{_value(counters, 'serving_queries_served_total', shard=shard):>7.0f} "
            f"{_value(counters, 'serving_queries_failed_total', shard=shard):>7.0f} "
            f"{_fmt_seconds(p50):>8} {_fmt_seconds(p99):>8} {_fmt_seconds(p999):>8}"
        )
    return rows


def _slo_rows(snapshot: dict[str, Any]) -> list[str]:
    gauges = snapshot.get("gauges", {})
    counters = snapshot.get("counters", {})
    budgets = _find(gauges, "slo_budget_remaining")
    if not budgets:
        return []
    rows = [
        f"  {'objective':<14} {'scope':<26} {'budget left':>12} "
        f"{'burn(fast)':>11} {'burn(slow)':>11} {'alerts':>7}"
    ]
    for labels, entry in budgets:
        objective = labels.get("objective", "?")
        scope = ",".join(
            f"{k}={v}" for k, v in sorted(labels.items()) if k != "objective"
        ) or "(fleet)"
        scoped = {k: v for k, v in labels.items()}
        burn_fast = _value(gauges, "slo_burn_rate", window="fast", **scoped)
        burn_slow = _value(gauges, "slo_burn_rate", window="slow", **scoped)
        alerts = _value(counters, "slo_burn_alerts_total", **scoped)
        remaining = float(entry["value"])
        flag = " !" if remaining < 0.0 or alerts else ""
        rows.append(
            f"  {objective:<14} {scope:<26} {remaining:>11.1%} "
            f"{burn_fast:>11.2f} {burn_slow:>11.2f} {alerts:>7.0f}{flag}"
        )
    return rows


def _client_rows(snapshot: dict[str, Any]) -> list[str]:
    sketches = snapshot.get("sketches", {})
    counters = snapshot.get("counters", {})
    frames = _find(sketches, "client_frame_seconds")
    if not frames:
        return []
    entry = frames[0][1]
    # Channel-labeled counters: sum every label set.
    degraded = sum(
        float(e["value"]) for _, e in _find(counters, "queries_degraded_total")
    )
    abandoned = sum(
        float(e["value"]) for _, e in _find(counters, "queries_abandoned_total")
    )
    return [
        f"  frames={entry['count']:.0f} "
        f"p50={_fmt_seconds(entry['p50'])} p99={_fmt_seconds(entry['p99'])} "
        f"p999={_fmt_seconds(entry['p999'])} "
        f"degraded={degraded:.0f} abandoned={abandoned:.0f}"
    ]


def _event_rows(events: list[dict[str, Any]], count: int = 8) -> list[str]:
    rows = []
    for record in events[-count:]:
        detail = " ".join(
            f"{k}={v}"
            for k, v in record.items()
            if k not in ("seq", "ts", "kind", "trace_id", "span_id")
        )
        trace = record.get("trace_id")
        suffix = f" [trace {trace}]" if trace else ""
        rows.append(f"  #{record.get('seq', '?'):>4} {record['kind']:<20} {detail}{suffix}")
    return rows


def render_dashboard(
    snapshot: dict[str, Any],
    events: list[dict[str, Any]] | None = None,
    title: str = "repro top",
) -> str:
    """One dashboard frame as a string (pure function of its inputs)."""
    gauges = snapshot.get("gauges", {})
    counters = snapshot.get("counters", {})
    served = sum(
        float(e["value"]) for _, e in _find(counters, "serving_queries_served_total")
    )
    rejected = sum(
        float(e["value"])
        for _, e in _find(counters, "serving_queries_rejected_total")
    )
    failed = sum(
        float(e["value"]) for _, e in _find(counters, "serving_queries_failed_total")
    )
    alerts = sum(
        float(e["value"]) for _, e in _find(counters, "slo_burn_alerts_total")
    )
    lines = [
        f"=== {title} " + "=" * max(1, 66 - len(title)),
        f"  venues={_value(gauges, 'serving_venues'):.0f} "
        f"shards={_value(gauges, 'serving_shards'):.0f} "
        f"served={served:.0f} rejected={rejected:.0f} failed={failed:.0f} "
        f"burn_alerts={alerts:.0f}",
    ]
    shard_rows = _shard_rows(snapshot)
    if shard_rows:
        lines.append("--- shards " + "-" * 60)
        lines.extend(shard_rows)
    slo_rows = _slo_rows(snapshot)
    if slo_rows:
        lines.append("--- slo " + "-" * 63)
        lines.extend(slo_rows)
    client_rows = _client_rows(snapshot)
    if client_rows:
        lines.append("--- client " + "-" * 60)
        lines.extend(client_rows)
    if events:
        lines.append("--- events " + "-" * 60)
        lines.extend(_event_rows(events))
    return "\n".join(lines)


def _load_events(path: str | None) -> list[dict[str, Any]]:
    if path is None or not Path(path).exists():
        return []
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn tail line of a file being appended to
    return records


def run_top(
    metrics_path: str,
    events_path: str | None = None,
    interval_seconds: float = 2.0,
    iterations: int | None = None,
    plain: bool = False,
) -> int:
    """Watch ``metrics_path`` and repaint the dashboard until interrupted.

    ``iterations`` bounds the number of frames (``None`` = run until
    Ctrl-C); ``plain`` forces the print path even on a tty.  Returns a
    shell exit code.
    """
    import sys

    use_curses = not plain and sys.stdout.isatty()
    screen = None
    if use_curses:
        try:
            import curses

            screen = curses.initscr()
            curses.noecho()
            curses.cbreak()
        except Exception:
            screen = None

    def frame() -> str:
        try:
            with open(metrics_path, "r", encoding="utf-8") as handle:
                snapshot = json.load(handle)
        except (OSError, json.JSONDecodeError) as error:
            return f"=== repro top ===\n  waiting for {metrics_path} ({error})"
        return render_dashboard(
            snapshot,
            events=_load_events(events_path),
            title=f"repro top — {metrics_path}",
        )

    painted = 0
    try:
        while iterations is None or painted < iterations:
            text = frame()
            if screen is not None:
                screen.erase()
                try:
                    screen.addstr(0, 0, text + "\n\n  (Ctrl-C to quit)")
                except Exception:
                    pass  # terminal smaller than the frame
                screen.refresh()
            else:
                print(text, flush=True)
            painted += 1
            if iterations is not None and painted >= iterations:
                break
            time.sleep(interval_seconds)
    except KeyboardInterrupt:
        pass
    finally:
        if screen is not None:
            import curses

            curses.nocbreak()
            curses.echo()
            curses.endwin()
    return 0
