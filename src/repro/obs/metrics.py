"""Instrument primitives: counters, gauges, histograms, and a registry.

The observability layer the rest of the reproduction reports into.  It
is deliberately dependency-free (stdlib only — not even numpy) so the
hot paths it instruments pay microseconds, not imports: a
:class:`Counter` increment is one float add, a :class:`Histogram`
observation is a bisect plus an (amortized O(1)) reservoir update.

Three design points worth knowing:

* **Get-or-create registry.**  ``registry.counter("x")`` returns the
  existing instrument when one named ``x`` (with the same labels)
  already exists, so call sites never coordinate instrument creation.
  Re-registering a name as a different type is an error.
* **Contextual default registry.**  Pipeline components
  (:class:`repro.core.client.VisualPrintClient`, the oracle, the
  server, the channel model) record into an explicit registry when
  given one, else into the registry installed by
  :func:`use_registry`, else into a private one.  The CLI wraps every
  experiment in ``use_registry`` so one ``--metrics-json`` snapshot
  captures client, oracle, network, and server at once.
* **Reservoir quantiles.**  Histograms keep fixed cumulative buckets
  (Prometheus-style) *and* a bounded uniform sample of raw values
  (Vitter's Algorithm R, seeded per-instrument for determinism) so
  ``quantile(0.5)`` stays accurate without unbounded memory.
"""

from __future__ import annotations

import json
import random
import threading
import time
from bisect import bisect_left
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.sketch import QuantileSketch

__all__ = [
    "Counter",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "QuantileSketch",
    "current_registry",
    "get_global_registry",
    "use_registry",
]

# Seconds-scale bounds covering microsecond instrument overhead up to
# multi-second SIFT extraction (Fig. 16's range on phone-class hardware).
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Payload-size bounds: a fingerprint is KB-scale, a lossless frame is
# hundreds of KB (Fig. 14's two curves live at opposite ends).
DEFAULT_BYTE_BUCKETS: tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0, 16777216.0,
)

_RESERVOIR_SIZE = 1024

#: Per-instrument-name cap on distinct label sets.  At fleet scale a
#: per-venue label can mint unbounded instruments; past the cap new
#: label sets collapse into one ``{overflow="true"}`` instrument so
#: memory stays bounded and the loss is visible as a counter.
DEFAULT_MAX_LABEL_SETS = 1000

_OVERFLOW_LABELS = {"overflow": "true"}


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(labels.items()))


class Counter:
    """Monotonically increasing count (frames, bytes, vetoes, ...)."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "_value")

    def __init__(self, name: str, help: str = "", labels: dict[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be non-negative, got {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {"value": self._value}

    def state(self) -> dict[str, Any]:
        return {"value": self._value}

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another counter's state in: counts add."""
        self._value += float(state["value"])


class Gauge:
    """A value that can go up and down (saturation ratio, queue depth)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "_value")

    def __init__(self, name: str, help: str = "", labels: dict[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {"value": self._value}

    def state(self) -> dict[str, Any]:
        return {"value": self._value}

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another gauge's state in: keep the elementwise maximum.

        Max (rather than last-write-wins) is deterministic under
        unordered worker completion and meaningful for the fill/
        saturation-style gauges this codebase records.
        """
        self._value = max(self._value, float(state["value"]))


class Histogram:
    """Fixed cumulative buckets plus a reservoir for quantiles."""

    kind = "histogram"
    __slots__ = (
        "name", "help", "labels", "bucket_bounds", "_bucket_counts",
        "_count", "_sum", "_min", "_max", "_reservoir", "_rng",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        buckets: tuple[float, ...] | None = None,
    ):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        bounds = tuple(float(b) for b in (buckets or DEFAULT_LATENCY_BUCKETS))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be strictly increasing: {bounds}")
        self.bucket_bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._reservoir: list[float] = []
        # Deterministic per-instrument stream: same observations in the
        # same order always summarize identically (tests rely on this).
        self._rng = random.Random(hash(name) & 0xFFFFFFFF)

    def observe(self, value: float) -> None:
        value = float(value)
        self._bucket_counts[bisect_left(self.bucket_bounds, value)] += 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if len(self._reservoir) < _RESERVOIR_SIZE:
            self._reservoir.append(value)
        else:  # Algorithm R replacement keeps a uniform sample.
            slot = self._rng.randrange(self._count)
            if slot < _RESERVOIR_SIZE:
                self._reservoir[slot] = value

    @contextmanager
    def time(self) -> Iterator[None]:
        """Observe the wall-clock duration of a ``with`` block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def values(self) -> list[float]:
        """Reservoir snapshot (exact and insertion-ordered until
        ``_RESERVOIR_SIZE`` observations, a uniform subsample after)."""
        return list(self._reservoir)

    def quantile(self, q: float) -> float:
        """Reservoir quantile with linear interpolation; 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._reservoir:
            return 0.0
        ordered = sorted(self._reservoir)
        position = q * (len(ordered) - 1)
        low = int(position)
        high = min(low + 1, len(ordered) - 1)
        fraction = position - low
        return ordered[low] * (1.0 - fraction) + ordered[high] * fraction

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.9, 0.99)) -> dict[float, float]:
        if not self._reservoir:
            return {q: 0.0 for q in qs}
        ordered = sorted(self._reservoir)
        out = {}
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile must be in [0, 1], got {q}")
            position = q * (len(ordered) - 1)
            low = int(position)
            high = min(low + 1, len(ordered) - 1)
            fraction = position - low
            out[q] = ordered[low] * (1.0 - fraction) + ordered[high] * fraction
        return out

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +Inf."""
        cumulative = 0
        pairs: list[tuple[float, int]] = []
        for bound, count in zip(self.bucket_bounds, self._bucket_counts):
            cumulative += count
            pairs.append((bound, cumulative))
        pairs.append((float("inf"), cumulative + self._bucket_counts[-1]))
        return pairs

    def reset(self) -> None:
        self._bucket_counts = [0] * (len(self.bucket_bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._reservoir.clear()

    def state(self) -> dict[str, Any]:
        return {
            "buckets": tuple(self.bucket_bounds),
            "bucket_counts": list(self._bucket_counts),
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "reservoir": list(self._reservoir),
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another histogram's state in.

        Bucket counts, totals, and extrema merge exactly.  The reservoir
        merge is an approximation: incoming samples are appended and the
        combined list truncated to the reservoir capacity, which keeps
        the merge deterministic (independent of worker completion order,
        since callers merge in chunk order) at the cost of slightly
        biasing quantiles toward earlier chunks once the reservoir
        overflows.
        """
        if tuple(state["buckets"]) != self.bucket_bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket bounds differ "
                f"({state['buckets']} vs {self.bucket_bounds})"
            )
        self._bucket_counts = [
            a + b for a, b in zip(self._bucket_counts, state["bucket_counts"])
        ]
        self._count += int(state["count"])
        self._sum += float(state["sum"])
        self._min = min(self._min, float(state["min"]))
        self._max = max(self._max, float(state["max"]))
        self._reservoir.extend(state["reservoir"])
        del self._reservoir[_RESERVOIR_SIZE:]

    def to_dict(self) -> dict[str, Any]:
        quantiles = self.quantiles((0.5, 0.9, 0.99))
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
            "mean": self.mean,
            "p50": quantiles[0.5],
            "p90": quantiles[0.9],
            "p99": quantiles[0.99],
            "buckets": [
                {"le": bound, "count": count} for bound, count in self.bucket_counts()
            ],
        }


class _NullContext:
    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


class _NullInstrument:
    """No-op stand-in handed out by a disabled registry."""

    kind = "null"
    __slots__ = ("name", "help", "labels")

    def __init__(self, name: str, help: str = "", labels: dict[str, str] | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def time(self) -> _NullContext:
        return _NullContext()

    def reset(self) -> None:
        pass

    @property
    def value(self) -> float:
        return 0.0

    @property
    def count(self) -> int:
        return 0

    @property
    def sum(self) -> float:
        return 0.0

    def values(self) -> list[float]:
        return []

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.9, 0.99)) -> dict[float, float]:
        return {q: 0.0 for q in qs}

    def to_dict(self) -> dict[str, Any]:
        return {}

    def state(self) -> dict[str, Any]:
        return {}

    def merge_state(self, state: dict[str, Any]) -> None:
        pass


class MetricsRegistry:
    """Namespace of instruments with get-or-create semantics.

    ``MetricsRegistry(enabled=False)`` hands out no-op instruments —
    the uninstrumented baseline the overhead benchmark compares against.
    """

    def __init__(
        self,
        enabled: bool = True,
        max_label_sets: int = DEFAULT_MAX_LABEL_SETS,
    ) -> None:
        if max_label_sets < 1:
            raise ValueError(f"max_label_sets must be >= 1, got {max_label_sets}")
        self.enabled = enabled
        self.max_label_sets = int(max_label_sets)
        self._instruments: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._label_set_counts: dict[str, int] = {}
        self._lock = threading.Lock()

    def __getstate__(self) -> dict[str, Any]:
        # Registries cross process boundaries when instrumented components
        # (oracle, matcher) are shipped to repro.parallel workers; the
        # lock is recreated on the far side.
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # -- instrument accessors ------------------------------------------

    def _get_or_create(self, cls: type, name: str, help: str,
                       labels: dict[str, str], **kwargs: Any) -> Any:
        if not self.enabled:
            return _NullInstrument(name, help, labels)
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.get(key)
                if instrument is None:
                    # Cardinality guard: a new label set past the per-name
                    # cap collapses into the shared overflow instrument
                    # (itself exempt, or the recursion would never end).
                    if (
                        labels != _OVERFLOW_LABELS
                        and self._label_set_counts.get(name, 0)
                        >= self.max_label_sets
                    ):
                        # Created inline (not via self.counter): the lock
                        # is held and not reentrant.
                        dropped_key = (
                            "metrics_label_sets_dropped_total",
                            _label_key({"metric": name}),
                        )
                        dropped = self._instruments.get(dropped_key)
                        if dropped is None:
                            dropped = Counter(
                                "metrics_label_sets_dropped_total",
                                help="new label sets collapsed into the "
                                "overflow instrument by the cardinality cap",
                                labels={"metric": name},
                            )
                            self._instruments[dropped_key] = dropped
                            self._label_set_counts[dropped.name] = (
                                self._label_set_counts.get(dropped.name, 0) + 1
                            )
                        dropped.inc()
                    else:
                        instrument = cls(name, help=help, labels=labels, **kwargs)
                        self._instruments[key] = instrument
                        self._label_set_counts[name] = (
                            self._label_set_counts.get(name, 0) + 1
                        )
        if instrument is None:  # capped: reroute to the overflow label set
            return self._get_or_create(
                cls, name, help, dict(_OVERFLOW_LABELS), **kwargs
            )
        if not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as {instrument.kind}, "
                f"not {cls.kind}"
            )
        return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, labels, buckets=buckets)

    def sketch(
        self,
        name: str,
        help: str = "",
        relative_accuracy: float = 0.01,
        **labels: str,
    ) -> QuantileSketch:
        """A mergeable streaming quantile sketch (see :mod:`repro.obs.sketch`)."""
        return self._get_or_create(
            QuantileSketch, name, help, labels,
            relative_accuracy=relative_accuracy,
        )

    # -- introspection / export ----------------------------------------

    def instruments(self) -> list[Any]:
        """All registered instruments, sorted by (name, labels)."""
        return [self._instruments[key] for key in sorted(self._instruments)]

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return any(key[0] == name for key in self._instruments)

    def get(self, name: str, **labels: str) -> Any | None:
        """Existing instrument by name (and labels), or ``None``."""
        return self._instruments.get((name, _label_key(labels)))

    def reset(self) -> None:
        """Zero every instrument (instruments stay registered)."""
        for instrument in self._instruments.values():
            instrument.reset()

    # -- cross-process merge --------------------------------------------

    def state(self) -> dict[str, Any]:
        """Serializable snapshot for :meth:`merge_state`.

        Unlike :meth:`to_dict` (a lossy human/JSON view), this captures
        everything needed to fold one registry into another: kind, name,
        help, labels, histogram bucket bounds, and raw instrument state.
        The payload is plain builtins, so it pickles cheaply across
        process boundaries (the :mod:`repro.parallel` worker protocol).
        """
        return {
            "instruments": [
                {
                    "kind": instrument.kind,
                    "name": instrument.name,
                    "help": instrument.help,
                    "labels": dict(instrument.labels),
                    "state": instrument.state(),
                }
                for instrument in self.instruments()
            ]
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a :meth:`state` snapshot into this registry.

        Instruments are get-or-created by (name, labels) — counters add,
        gauges take the max, histograms combine buckets/totals (see each
        instrument's ``merge_state``).  Merging the same snapshot twice
        double-counts; callers merge each worker snapshot exactly once.
        """
        if not self.enabled:
            return
        for entry in state.get("instruments", ()):
            kind = entry["kind"]
            labels = entry["labels"]
            if kind == "counter":
                instrument = self.counter(entry["name"], help=entry["help"], **labels)
            elif kind == "gauge":
                instrument = self.gauge(entry["name"], help=entry["help"], **labels)
            elif kind == "histogram":
                instrument = self.histogram(
                    entry["name"],
                    help=entry["help"],
                    buckets=tuple(entry["state"]["buckets"]),
                    **labels,
                )
            elif kind == "sketch":
                instrument = self.sketch(
                    entry["name"],
                    help=entry["help"],
                    relative_accuracy=float(
                        entry["state"]["relative_accuracy"]
                    ),
                    **labels,
                )
            else:  # null instruments carry no state
                continue
            instrument.merge_state(entry["state"])

    def merge(self, other: "MetricsRegistry") -> None:
        """Convenience: fold another registry's current contents in."""
        self.merge_state(other.state())

    def samples(self) -> list[tuple[str, tuple[tuple[str, str], ...], float]]:
        """Flat ``(sample_name, labels, value)`` triples.

        Exactly the samples the Prometheus text rendering emits, in
        order — the round-trip contract tested against
        :func:`repro.obs.export.parse_prometheus`.
        """
        out: list[tuple[str, tuple[tuple[str, str], ...], float]] = []
        for instrument in self.instruments():
            base = _label_key(instrument.labels)
            if instrument.kind in ("counter", "gauge"):
                out.append((instrument.name, base, instrument.value))
            elif instrument.kind == "histogram":
                for bound, count in instrument.bucket_counts():
                    le = "+Inf" if bound == float("inf") else repr(bound)
                    out.append(
                        (f"{instrument.name}_bucket", base + (("le", le),), float(count))
                    )
                out.append((f"{instrument.name}_sum", base, instrument.sum))
                out.append((f"{instrument.name}_count", base, float(instrument.count)))
            elif instrument.kind == "sketch":
                # Rendered like a Prometheus summary: one sample per
                # precomputed quantile plus the _sum/_count pair.
                for q, value in instrument.quantiles().items():
                    out.append(
                        (instrument.name, base + (("quantile", repr(q)),), value)
                    )
                out.append((f"{instrument.name}_sum", base, instrument.sum))
                out.append((f"{instrument.name}_count", base, float(instrument.count)))
        return out

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready snapshot grouped by instrument kind."""
        snapshot: dict[str, Any] = {
            "counters": {}, "gauges": {}, "histograms": {}, "sketches": {},
        }
        group = {
            "counter": "counters",
            "gauge": "gauges",
            "histogram": "histograms",
            "sketch": "sketches",
        }
        for instrument in self.instruments():
            entry = instrument.to_dict()
            if instrument.labels:
                entry["labels"] = dict(instrument.labels)
                key = instrument.name + "{" + ",".join(
                    f"{k}={v}" for k, v in _label_key(instrument.labels)
                ) + "}"
            else:
                key = instrument.name
            if instrument.help:
                entry["help"] = instrument.help
            snapshot[group[instrument.kind]][key] = entry
        return snapshot

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def to_prometheus(self) -> str:
        from repro.obs.export import render_prometheus

        return render_prometheus(self)


# ----------------------------------------------------------------------
# Contextual default registry
# ----------------------------------------------------------------------

_GLOBAL_REGISTRY = MetricsRegistry()
_context_stack: list[MetricsRegistry] = []


def get_global_registry() -> MetricsRegistry:
    """The process-wide fallback registry (rarely what you want to read;
    prefer :func:`use_registry` scoping or per-component registries)."""
    return _GLOBAL_REGISTRY


def current_registry() -> MetricsRegistry | None:
    """The innermost :func:`use_registry` registry, or ``None``."""
    return _context_stack[-1] if _context_stack else None


@contextmanager
def use_registry(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the contextual default.

    Components constructed (or channel transfers performed) inside the
    block report into it unless they were given an explicit registry.
    """
    _context_stack.append(registry)
    try:
        yield registry
    finally:
        _context_stack.pop()
