"""Streaming quantile sketch: p50/p99/p999 without storing samples.

The :class:`repro.obs.Histogram` answers quantile queries from a bounded
reservoir — exact until 1024 observations, then a uniform subsample
whose cross-worker merge is order-biased (chunk order decides which
samples survive).  That is fine for per-run summaries but wrong for SLO
arithmetic at fleet scale, where tail quantiles over millions of
latencies must be (a) memory-bounded, (b) *mergeable with an
order-independent result*, and (c) carry a known error bound.

:class:`QuantileSketch` is a fixed-relative-accuracy sketch in the
DDSketch family: values map to geometrically-spaced buckets
(``key = ceil(log_gamma(value))`` with ``gamma = (1 + a) / (1 - a)``),
so every reported quantile is within relative accuracy ``a`` (default
1%) of an exact sample quantile, at any scale from microseconds to
hours.  Buckets are a sparse dict, so memory is O(log(max/min) / a) —
a few hundred ints for any realistic latency distribution — and merging
two sketches is bucket-wise addition: exactly commutative and
associative, so a ``workers=N`` :mod:`repro.parallel` merge-back
reports bit-identical quantiles to a serial run regardless of chunk
completion order (the property ``tests/test_sketch.py`` holds it to).

Registered through :meth:`repro.obs.MetricsRegistry.sketch`, a sketch
rides the registry's existing ``state()`` / ``merge_state()``
cross-process protocol and shows up in JSON snapshots under a
``"sketches"`` section with p50/p99/p999 precomputed — which is what
``repro slo-report`` and ``repro top`` render.
"""

from __future__ import annotations

import math
from typing import Any, Iterator

__all__ = ["DEFAULT_QUANTILES", "QuantileSketch"]

#: The quantile set SLO reporting renders everywhere.
DEFAULT_QUANTILES: tuple[float, ...] = (0.5, 0.99, 0.999)

# Values at or below this are collapsed into the zero bucket: the
# geometric mapping cannot represent 0, and sub-nanosecond "latencies"
# are measurement noise, not signal.
_MIN_TRACKABLE = 1e-9


class QuantileSketch:
    """Mergeable fixed-relative-accuracy quantile sketch (DDSketch-style).

    ``relative_accuracy`` is the worst-case relative error of any
    reported quantile *value*: ``quantile(q)`` returns a value ``v``
    with ``|v - x| <= relative_accuracy * x`` for some exact sample
    quantile ``x`` at rank ``q``.  Values must be non-negative (these
    are latencies and sizes); values below 1e-9 count into a dedicated
    zero bucket.
    """

    kind = "sketch"
    __slots__ = (
        "name", "help", "labels", "relative_accuracy", "_gamma",
        "_log_gamma", "_buckets", "_zero_count", "_count", "_sum",
        "_min", "_max",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: dict[str, str] | None = None,
        relative_accuracy: float = 0.01,
    ):
        if not 0.0 < relative_accuracy < 1.0:
            raise ValueError(
                f"relative_accuracy must be in (0, 1), got {relative_accuracy}"
            )
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.relative_accuracy = float(relative_accuracy)
        self._gamma = (1.0 + relative_accuracy) / (1.0 - relative_accuracy)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # -- recording ------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0:
            raise ValueError(f"sketch values must be non-negative, got {value}")
        if value <= _MIN_TRACKABLE:
            self._zero_count += 1
        else:
            key = math.ceil(math.log(value) / self._log_gamma)
            self._buckets[key] = self._buckets.get(key, 0) + 1
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # -- queries --------------------------------------------------------

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def num_buckets(self) -> int:
        return len(self._buckets) + (1 if self._zero_count else 0)

    def _bucket_value(self, key: int) -> float:
        """Midpoint estimate for a bucket: within ``a`` of any member."""
        return 2.0 * self._gamma ** key / (self._gamma + 1.0)

    def quantile(self, q: float) -> float:
        """The q-quantile estimate; 0.0 when empty.

        Rank convention matches ``numpy``'s ``method="lower"`` on the
        sorted sample (``rank = floor(q * (count - 1))``), so the
        returned value is within ``relative_accuracy`` of the exact
        sample value at that rank.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return 0.0
        rank = int(q * (self._count - 1))
        if rank < self._zero_count:
            return 0.0
        cumulative = self._zero_count
        for key in sorted(self._buckets):
            cumulative += self._buckets[key]
            if cumulative > rank:
                return self._bucket_value(key)
        return self._bucket_value(max(self._buckets))  # pragma: no cover

    def quantiles(
        self, qs: tuple[float, ...] = DEFAULT_QUANTILES
    ) -> dict[float, float]:
        """Several quantiles in one sorted-bucket walk."""
        for q in qs:
            if not 0.0 <= q <= 1.0:
                raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self._count == 0:
            return {q: 0.0 for q in qs}
        ranks = {q: int(q * (self._count - 1)) for q in qs}
        out: dict[float, float] = {}
        ordered = sorted(self._buckets)
        for q, rank in ranks.items():
            if rank < self._zero_count:
                out[q] = 0.0
        cumulative = self._zero_count
        for key in ordered:
            cumulative += self._buckets[key]
            for q, rank in ranks.items():
                if q not in out and cumulative > rank:
                    out[q] = self._bucket_value(key)
            if len(out) == len(qs):
                break
        return {q: out.get(q, 0.0) for q in qs}

    def bucket_items(self) -> Iterator[tuple[int, int]]:
        """``(key, count)`` pairs in ascending key order."""
        for key in sorted(self._buckets):
            yield key, self._buckets[key]

    # -- lifecycle / merge protocol ------------------------------------

    def reset(self) -> None:
        self._buckets.clear()
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def state(self) -> dict[str, Any]:
        return {
            "relative_accuracy": self.relative_accuracy,
            "zero_count": self._zero_count,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
            "buckets": [[key, count] for key, count in self.bucket_items()],
        }

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold another sketch's state in: bucket-wise addition.

        Addition over a sparse dict is commutative and associative, so
        any merge order — serial, chunked, tree-shaped — yields the
        same buckets and therefore the same quantiles (the
        order-independence guarantee the reservoir histogram lacks).
        """
        if float(state["relative_accuracy"]) != self.relative_accuracy:
            raise ValueError(
                f"cannot merge sketch {self.name!r}: relative accuracy differs "
                f"({state['relative_accuracy']} vs {self.relative_accuracy})"
            )
        self._zero_count += int(state["zero_count"])
        self._count += int(state["count"])
        self._sum += float(state["sum"])
        self._min = min(self._min, float(state["min"]))
        self._max = max(self._max, float(state["max"]))
        for key, count in state["buckets"]:
            key = int(key)
            self._buckets[key] = self._buckets.get(key, 0) + int(count)

    def to_dict(self) -> dict[str, Any]:
        quantiles = self.quantiles(DEFAULT_QUANTILES)
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
            "mean": self.mean,
            "p50": quantiles[0.5],
            "p99": quantiles[0.99],
            "p999": quantiles[0.999],
            "relative_accuracy": self.relative_accuracy,
            "num_buckets": self.num_buckets,
        }
