"""Lightweight tracing: nested spans with per-stage wall-clock.

A :class:`Span` is one timed region of the pipeline ("frame" →
"sift" / "oracle" / "serialize"); a :class:`Tracer` maintains the
active-span stack so ``with tracer.span(...)`` nests automatically.
Finished root spans are retained (bounded) for inspection, and every
span's duration is mirrored into a registry histogram named
``span_<name>_seconds`` so traces and metrics tell one story.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry

__all__ = ["Span", "Tracer"]

_MAX_RETAINED_ROOTS = 256


class Span:
    """One timed pipeline region, possibly with child spans."""

    __slots__ = ("name", "start_seconds", "end_seconds", "children", "attributes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.start_seconds = time.perf_counter()
        self.end_seconds: float | None = None
        self.children: list["Span"] = []
        self.attributes: dict[str, Any] = {}

    def finish(self) -> None:
        if self.end_seconds is None:
            self.end_seconds = time.perf_counter()

    @property
    def finished(self) -> bool:
        return self.end_seconds is not None

    @property
    def duration_seconds(self) -> float:
        end = self.end_seconds if self.end_seconds is not None else time.perf_counter()
        return end - self.start_seconds

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def child(self, name: str) -> "Span | None":
        """First direct child with ``name``, or ``None``."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        state = f"{self.duration_seconds * 1e3:.2f}ms" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class Tracer:
    """Creates and nests spans; mirrors durations into a registry."""

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        span = Span(name)
        span.attributes.update(attributes)
        if self._stack:
            self._stack[-1].children.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            span.finish()
            if not self._stack:
                self.roots.append(span)
                # Bound retention: drop oldest roots, keep the tail.
                if len(self.roots) > _MAX_RETAINED_ROOTS:
                    del self.roots[: len(self.roots) - _MAX_RETAINED_ROOTS]
            if self.registry is not None:
                self.registry.histogram(
                    f"span_{span.name}_seconds",
                    help=f"wall-clock of the {span.name!r} span",
                ).observe(span.duration_seconds)

    def last_root(self) -> Span | None:
        return self.roots[-1] if self.roots else None
