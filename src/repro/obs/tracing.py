"""Request-scoped tracing: spans, trace contexts, and collection.

A :class:`Span` is one timed region of the pipeline ("frame" →
"sift" / "oracle" / "serialize") carrying OpenTelemetry-style identity
(``trace_id`` / ``span_id`` / ``parent_id``) plus a wall-clock start
timestamp, so spans recorded by *different* components — the client,
the channel model, the oracle, the server, even pool workers in other
processes — can be stitched back into one per-query trace.

Three cooperating pieces:

* :class:`Tracer` — creates and nests spans.  The active-span stack is
  **process-wide** (module level), so a span opened by one component
  while another component's span is active nests under it
  automatically; one query flows through the whole offload path as one
  tree.  (The pipeline parallelizes across processes, never across
  threads, so a single stack per process is exact.)
* :class:`TraceContext` + :func:`use_trace_context` — explicit
  propagation for the *sequential* parts of the path: a driver that
  fingerprints a frame and later pushes the payload through the channel
  model wraps the transfer in ``use_trace_context(root.context)`` so
  the transfer span joins the frame's trace even though the frame span
  already closed (or ran in another process).
* :class:`TraceCollector` + :func:`use_collector` — a contextual sink
  (mirroring :func:`repro.obs.use_registry`) that receives every
  finished local-root span; :mod:`repro.parallel` ships worker
  collectors back to the parent so ``workers=N`` runs lose no trace
  data.

Durations come from ``perf_counter`` (monotonic); cross-process
ordering and export timestamps come from ``start_unix`` (epoch
seconds).  Every span's duration is mirrored into a registry histogram
named ``span_<name>_seconds`` so traces and metrics tell one story.
"""

from __future__ import annotations

import itertools
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry, current_registry

__all__ = [
    "QueryTrace",
    "Span",
    "TraceCollector",
    "TraceContext",
    "Tracer",
    "current_collector",
    "current_span",
    "current_trace_context",
    "group_traces",
    "isolated_trace_state",
    "record_span",
    "trace_span",
    "use_collector",
    "use_trace_context",
]

_MAX_RETAINED_ROOTS = 256

# Monotonic per-process id source.  Ids are "<pid>-<counter>" in hex:
# pool workers fork *after* the parent has minted ids, so the counter
# alone would collide across workers — the pid prefix keeps every id
# globally unique without importing uuid/random (which would perturb
# the repo's seeded RNG discipline if misused).
_ID_COUNTER = itertools.count(1)


def _new_id() -> str:
    return f"{os.getpid():x}-{next(_ID_COUNTER):x}"


def _metric_safe(name: str) -> str:
    """Span name → Prometheus-legal metric-name fragment."""
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


def _jsonable(value: Any) -> Any:
    """Attribute value → something json.dump accepts (numpy scalars included)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        try:
            return value.item()
        except Exception:  # pragma: no cover - exotic array-likes
            return str(value)
    return str(value)


@dataclass(frozen=True)
class TraceContext:
    """The portable identity of a span: what a child needs to link up.

    Frozen and made of two strings, so it pickles across the process
    pool and travels in plain tuples returned by worker functions.
    """

    trace_id: str
    span_id: str


class Span:
    """One timed pipeline region, possibly with child spans."""

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start_unix",
        "start_seconds",
        "end_seconds",
        "children",
        "attributes",
    )

    def __init__(
        self,
        name: str,
        *,
        trace_id: str | None = None,
        span_id: str | None = None,
        parent_id: str | None = None,
        start_unix: float | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id if trace_id is not None else _new_id()
        self.span_id = span_id if span_id is not None else _new_id()
        self.parent_id = parent_id
        self.start_unix = time.time() if start_unix is None else float(start_unix)
        self.start_seconds = time.perf_counter()
        self.end_seconds: float | None = None
        self.children: list["Span"] = []
        self.attributes: dict[str, Any] = {}

    def finish(self, duration_seconds: float | None = None) -> None:
        """Close the span; pass ``duration_seconds`` for simulated time.

        The channel model records *simulated* transfer durations (its
        seconds never elapse on this host), so a span can be finished
        with an explicit duration instead of the wall clock.
        """
        if self.end_seconds is None:
            if duration_seconds is not None:
                self.end_seconds = self.start_seconds + float(duration_seconds)
            else:
                self.end_seconds = time.perf_counter()

    @property
    def finished(self) -> bool:
        return self.end_seconds is not None

    @property
    def duration_seconds(self) -> float:
        end = self.end_seconds if self.end_seconds is not None else time.perf_counter()
        return end - self.start_seconds

    @property
    def end_unix(self) -> float:
        return self.start_unix + self.duration_seconds

    @property
    def context(self) -> TraceContext:
        """This span's identity, for linking later/out-of-process work."""
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def set(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def child(self, name: str) -> "Span | None":
        """First direct child with ``name``, or ``None``."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def iter_spans(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_unix": self.start_unix,
            "duration_seconds": self.duration_seconds,
            "attributes": {k: _jsonable(v) for k, v in self.attributes.items()},
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        ``perf_counter`` readings are process-local, so the rebuilt span
        anchors its duration at 0 and keeps ``start_unix`` as the only
        cross-process timestamp.
        """
        span = cls(
            payload["name"],
            trace_id=payload["trace_id"],
            span_id=payload["span_id"],
            parent_id=payload.get("parent_id"),
            start_unix=payload.get("start_unix", 0.0),
        )
        span.start_seconds = 0.0
        span.end_seconds = float(payload["duration_seconds"])
        span.attributes = dict(payload.get("attributes", {}))
        span.children = [cls.from_dict(child) for child in payload.get("children", [])]
        return span

    def __repr__(self) -> str:
        state = f"{self.duration_seconds * 1e3:.2f}ms" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


# ---------------------------------------------------------------------------
# Process-wide propagation state
# ---------------------------------------------------------------------------

# The active-span stack: shared by every Tracer in the process so spans
# from different components nest into one tree.  LIFO discipline is
# guaranteed by the with-blocks that push/pop.
_ACTIVE_SPANS: list[Span] = []

# Explicitly-installed trace contexts (use_trace_context), innermost last.
_CONTEXT_STACK: list[TraceContext] = []

# Installed collectors (use_collector), innermost last.
_COLLECTOR_STACK: list["TraceCollector"] = []


def current_span() -> Span | None:
    """The innermost open span in this process, if any."""
    return _ACTIVE_SPANS[-1] if _ACTIVE_SPANS else None


def current_trace_context() -> TraceContext | None:
    """The innermost explicitly-installed :class:`TraceContext`, if any."""
    return _CONTEXT_STACK[-1] if _CONTEXT_STACK else None


@contextmanager
def use_trace_context(context: TraceContext | None) -> Iterator[TraceContext | None]:
    """Make spans started inside the block children of ``context``.

    Accepts ``None`` as a no-op so call sites can propagate an optional
    context without branching.
    """
    if context is None:
        yield None
        return
    _CONTEXT_STACK.append(context)
    try:
        yield context
    finally:
        _CONTEXT_STACK.pop()


def current_collector() -> "TraceCollector | None":
    """The innermost installed :class:`TraceCollector`, if any."""
    return _COLLECTOR_STACK[-1] if _COLLECTOR_STACK else None


@contextmanager
def use_collector(collector: "TraceCollector") -> Iterator["TraceCollector"]:
    """Deliver every local-root span finished inside the block to ``collector``."""
    _COLLECTOR_STACK.append(collector)
    try:
        yield collector
    finally:
        _COLLECTOR_STACK.pop()


@contextmanager
def isolated_trace_state() -> Iterator[None]:
    """Run a block under empty propagation stacks (pool-chunk isolation).

    A forked pool worker inherits copies of the parent's open-span /
    context / collector stacks; chunk work must not nest under them (a
    ``workers=1`` run would then differ from ``workers=N``), so
    :mod:`repro.parallel` wraps every chunk — in-process or forked — in
    this guard.  The previous stacks are restored on exit.
    """
    saved_spans = _ACTIVE_SPANS[:]
    saved_contexts = _CONTEXT_STACK[:]
    saved_collectors = _COLLECTOR_STACK[:]
    _ACTIVE_SPANS.clear()
    _CONTEXT_STACK.clear()
    _COLLECTOR_STACK.clear()
    try:
        yield
    finally:
        _ACTIVE_SPANS[:] = saved_spans
        _CONTEXT_STACK[:] = saved_contexts
        _COLLECTOR_STACK[:] = saved_collectors


def _open_span(name: str, attributes: dict[str, Any]) -> tuple[Span, Span | None]:
    """Create a span linked to the active span or the ambient context."""
    parent = current_span()
    if parent is not None:
        span = Span(name, trace_id=parent.trace_id, parent_id=parent.span_id)
        parent.children.append(span)
    else:
        ambient = current_trace_context()
        if ambient is not None:
            span = Span(name, trace_id=ambient.trace_id, parent_id=ambient.span_id)
        else:
            span = Span(name)
    if attributes:
        span.attributes.update(attributes)
    return span, parent


def _deliver_root(span: Span) -> None:
    collector = current_collector()
    if collector is not None:
        collector.collect(span)


def _mirror_duration(span: Span, registry: MetricsRegistry | None) -> None:
    if registry is not None:
        registry.histogram(
            f"span_{_metric_safe(span.name)}_seconds",
            help=f"wall-clock of the {span.name!r} span",
        ).observe(span.duration_seconds)


# ---------------------------------------------------------------------------
# Span creation APIs
# ---------------------------------------------------------------------------


class Tracer:
    """Creates and nests spans; mirrors durations into a registry.

    ``roots`` retains this tracer's finished local-root spans (bounded
    at ``max_retained_roots``; trims increment the
    ``tracer_roots_dropped_total`` counter so retention loss is never
    silent).  Spans that nest under another component's open span do
    not appear in ``roots`` — they appear in the owning trace's tree.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        max_retained_roots: int = _MAX_RETAINED_ROOTS,
    ) -> None:
        self.registry = registry
        self.roots: list[Span] = []
        self.max_retained_roots = int(max_retained_roots)
        self.roots_dropped = 0

    @property
    def current(self) -> Span | None:
        return current_span()

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        span, parent = _open_span(name, attributes)
        _ACTIVE_SPANS.append(span)
        try:
            yield span
        finally:
            _ACTIVE_SPANS.pop()
            span.finish()
            if parent is None:
                self.roots.append(span)
                if len(self.roots) > self.max_retained_roots:
                    dropped = len(self.roots) - self.max_retained_roots
                    del self.roots[:dropped]
                    self.roots_dropped += dropped
                    if self.registry is not None:
                        self.registry.counter(
                            "tracer_roots_dropped_total",
                            help="finished root spans trimmed from Tracer.roots",
                        ).inc(dropped)
                _deliver_root(span)
            _mirror_duration(span, self.registry)

    def last_root(self) -> Span | None:
        return self.roots[-1] if self.roots else None

    def last_context(self) -> TraceContext | None:
        """The most recent root span's :class:`TraceContext`, if any."""
        root = self.last_root()
        return root.context if root is not None else None


@contextmanager
def trace_span(
    name: str, registry: MetricsRegistry | None = None, **attributes: Any
) -> Iterator[Span]:
    """A span without a component :class:`Tracer` (drivers, pool workers).

    Links like any tracer span (active span > ambient context > new
    trace); local roots go to the current collector.  Durations mirror
    into ``registry`` (default: the contextual registry, if any) —
    there is no per-tracer root retention, the collector is the sink.
    """
    span, parent = _open_span(name, attributes)
    _ACTIVE_SPANS.append(span)
    try:
        yield span
    finally:
        _ACTIVE_SPANS.pop()
        span.finish()
        if parent is None:
            _deliver_root(span)
        _mirror_duration(span, registry if registry is not None else current_registry())


def record_span(
    name: str,
    duration_seconds: float,
    registry: MetricsRegistry | None = None,
    **attributes: Any,
) -> Span | None:
    """Record an already-measured (or simulated) region as a span.

    For durations that never elapse on this host — the channel model's
    simulated transfer seconds — where a timed with-block would lie.
    Links to the active span or the ambient :class:`TraceContext`; when
    neither exists and no collector is installed the event has no
    possible consumer and ``None`` is returned without allocating.
    """
    if not (_ACTIVE_SPANS or _CONTEXT_STACK or _COLLECTOR_STACK):
        return None
    span, parent = _open_span(name, attributes)
    span.finish(duration_seconds=duration_seconds)
    if parent is None:
        _deliver_root(span)
    _mirror_duration(span, registry)
    return span


# ---------------------------------------------------------------------------
# Trace assembly
# ---------------------------------------------------------------------------


@dataclass
class QueryTrace:
    """All local-root spans sharing one ``trace_id`` — one query's story.

    A query's tree can arrive in pieces (the frame tree from a pool
    worker, the transfer span from the parent); grouping by trace id
    reassembles the pieces without requiring them to share memory.
    """

    trace_id: str
    roots: list[Span]

    @property
    def start_unix(self) -> float:
        return min(s.start_unix for root in self.roots for s in root.iter_spans())

    @property
    def end_unix(self) -> float:
        # Over all spans, not just roots: a simulated-duration child
        # (e.g. a transfer recorded while its root is still open) can
        # end after its parent and must count toward the extent.
        return max(s.end_unix for root in self.roots for s in root.iter_spans())

    @property
    def duration_seconds(self) -> float:
        """The query's busy time: summed per-root extents.

        The legs of one query can run far apart in wall-clock — a driver
        fingerprints every frame first, then replays the transfers — so
        the raw ``end_unix - start_unix`` extent would be dominated by
        idle gaps between legs, not by the query's own cost.  Summing
        each root's extent (which still includes simulated child
        durations that outlast their parent) ranks queries by what they
        actually spent.
        """
        return sum(
            max(s.end_unix for s in root.iter_spans()) - root.start_unix
            for root in self.roots
        )

    @property
    def num_spans(self) -> int:
        return sum(1 for root in self.roots for _ in root.iter_spans())

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "duration_seconds": self.duration_seconds,
            "num_spans": self.num_spans,
            "roots": [root.to_dict() for root in self.roots],
        }


def group_traces(roots: Iterator[Span] | list[Span]) -> list[QueryTrace]:
    """Group root spans by ``trace_id``, preserving first-seen order."""
    grouped: dict[str, list[Span]] = {}
    for root in roots:
        grouped.setdefault(root.trace_id, []).append(root)
    return [QueryTrace(trace_id=tid, roots=spans) for tid, spans in grouped.items()]


class TraceCollector:
    """Contextual sink for finished local-root spans.

    Install with :func:`use_collector` around a run; every component's
    root spans land here.  ``state()`` / ``merge_state()`` mirror the
    :class:`MetricsRegistry` cross-process protocol: a pool worker
    returns ``collector.state()`` (plain dicts, picklable) and the
    parent merges it back in deterministic chunk order.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        max_roots: int = 100_000,
    ) -> None:
        self.registry = registry
        self.max_roots = int(max_roots)
        self.roots: list[Span] = []
        self.roots_dropped = 0

    def collect(self, root: Span) -> None:
        self.roots.append(root)
        if len(self.roots) > self.max_roots:
            dropped = len(self.roots) - self.max_roots
            del self.roots[:dropped]
            self.roots_dropped += dropped
            if self.registry is not None:
                self.registry.counter(
                    "trace_collector_roots_dropped_total",
                    help="root spans trimmed from a bounded TraceCollector",
                ).inc(dropped)

    def spans(self) -> Iterator[Span]:
        """Every retained span (roots and descendants), depth-first."""
        for root in self.roots:
            yield from root.iter_spans()

    def traces(self) -> list[QueryTrace]:
        """Retained roots grouped into per-query traces."""
        return group_traces(self.roots)

    def clear(self) -> None:
        self.roots.clear()

    def state(self) -> list[dict[str, Any]]:
        """Picklable snapshot of the retained roots (for merge_state)."""
        return [root.to_dict() for root in self.roots]

    def merge_state(self, state: list[dict[str, Any]]) -> None:
        """Fold a worker collector's :meth:`state` into this collector."""
        for payload in state:
            self.collect(Span.from_dict(payload))
