"""SLO engine: sliding windows, error budgets, multi-window burn alerts.

The paper's promise is a latency SLO in disguise — "sub-second
localization over constrained uplinks" — and a serving fleet needs that
promise as arithmetic, not prose.  This module turns a stream of
per-query outcomes into:

* **error budgets** — an :class:`SloObjective` names a target good
  fraction (e.g. 99.9% of queries answered, 99% under a latency
  threshold); the *budget* is the tolerated bad fraction
  (``1 - target``), measured over a sliding window;
* **burn rates** — how fast the budget is being spent: a burn rate of
  1.0 spends exactly the budget over the window, 14.4 exhausts a
  30-day budget in 2 days (the classic SRE fast-page threshold);
* **multi-window alerts** — an alert fires only when *both* the fast
  window (recent spike) and the slow window (sustained) exceed their
  burn thresholds, which suppresses both one-off blips (fast trips,
  slow doesn't) and long-recovered incidents (slow still polluted,
  fast clean).  Alerts are edge-triggered: one
  ``slo_burn_alerts_total`` increment (and one ``slo.burn_alert``
  event) per excursion, not per query.

:class:`SloTracker` keys window state by (objective, scope) where scope
is free-form labels — ``venue=...``, ``shard=...`` — so one tracker
watches per-venue and per-shard objectives side by side.  Every
evaluation publishes ``slo_budget_remaining`` / ``slo_burn_rate``
gauges into the registry, so a metrics snapshot *is* the SLO dashboard
(``repro top`` and ``repro slo-report`` just render it).

Time is injectable: ``record(..., now=...)`` takes the caller's clock
(simulated seconds in the load harness, ``time.monotonic()`` by
default in the live frontend), so the engine works identically for
wall-clock serving and discrete-event simulation.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

from repro.obs.events import emit_event
from repro.obs.metrics import MetricsRegistry
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "SloObjective",
    "SloTracker",
    "current_slo_tracker",
    "default_objectives",
    "use_slo_tracker",
]


@dataclass(frozen=True)
class SloObjective:
    """One service-level objective and its alerting policy.

    ``threshold_seconds`` set makes this a *latency* objective (an event
    is good when it succeeded **and** finished within the threshold);
    unset makes it an *availability* objective (good = succeeded).

    The default burn thresholds are the SRE-book pairing for a paging
    alert — 14.4x over the fast window, 6x sustained over the slow
    window — scaled to whatever window lengths the caller picks.
    ``min_events`` keeps a nearly-empty window from alerting off its
    first failure.
    """

    name: str
    target: float
    threshold_seconds: float | None = None
    window_seconds: float = 3600.0
    fast_window_seconds: float = 300.0
    fast_burn_threshold: float = 14.4
    slow_burn_threshold: float = 6.0
    min_events: int = 10

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("objective name must be non-empty")
        check_in_range("target", self.target, 0.0, 1.0)
        if self.target >= 1.0:
            raise ValueError(
                f"target must leave a non-zero error budget, got {self.target}"
            )
        if self.threshold_seconds is not None:
            check_positive("threshold_seconds", self.threshold_seconds)
        check_positive("window_seconds", self.window_seconds)
        check_positive("fast_window_seconds", self.fast_window_seconds)
        if self.fast_window_seconds > self.window_seconds:
            raise ValueError(
                "fast_window_seconds must not exceed window_seconds "
                f"({self.fast_window_seconds} > {self.window_seconds})"
            )
        check_positive("fast_burn_threshold", self.fast_burn_threshold)
        check_positive("slow_burn_threshold", self.slow_burn_threshold)
        check_positive("min_events", self.min_events)

    @property
    def budget(self) -> float:
        """The tolerated bad fraction (the error budget)."""
        return 1.0 - self.target

    def is_good(self, ok: bool, latency_seconds: float | None) -> bool:
        """Classify one event under this objective."""
        if not ok:
            return False
        if self.threshold_seconds is None:
            return True
        if latency_seconds is None:
            return True  # availability-only callers don't fail latency SLOs
        return latency_seconds <= self.threshold_seconds


def default_objectives(
    latency_threshold_seconds: float = 1.0,
    window_seconds: float = 3600.0,
    fast_window_seconds: float = 300.0,
) -> tuple[SloObjective, ...]:
    """The stock objective pair: paper-latency and availability.

    ``latency`` holds 99% of queries under the paper's sub-second bar;
    ``availability`` holds 99.9% of admissions to a served answer.
    """
    return (
        SloObjective(
            name="latency",
            target=0.99,
            threshold_seconds=latency_threshold_seconds,
            window_seconds=window_seconds,
            fast_window_seconds=fast_window_seconds,
        ),
        SloObjective(
            name="availability",
            target=0.999,
            window_seconds=window_seconds,
            fast_window_seconds=fast_window_seconds,
        ),
    )


class _ScopeWindow:
    """Sliding event window for one (objective, scope) pair."""

    __slots__ = ("events", "bad", "alerting", "alerts", "total_events", "total_bad")

    def __init__(self) -> None:
        # (now_seconds, bad: bool), oldest first; evicted past the slow window.
        self.events: deque[tuple[float, bool]] = deque()
        self.bad = 0  # bad count within the slow window
        self.alerting = False
        self.alerts = 0
        self.total_events = 0  # lifetime, never evicted
        self.total_bad = 0

    def add(self, now: float, bad: bool, window_seconds: float) -> None:
        self.events.append((now, bad))
        self.bad += bad
        self.total_events += 1
        self.total_bad += bad
        horizon = now - window_seconds
        while self.events and self.events[0][0] <= horizon:
            _, was_bad = self.events.popleft()
            self.bad -= was_bad

    def fast_counts(self, now: float, fast_window_seconds: float) -> tuple[int, int]:
        """(events, bad) within the trailing fast window."""
        horizon = now - fast_window_seconds
        events = bad = 0
        for when, was_bad in reversed(self.events):
            if when <= horizon:
                break
            events += 1
            bad += was_bad
        return events, bad


def _scope_key(scope: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted(scope.items()))


class SloTracker:
    """Evaluates a set of objectives over a stream of scoped outcomes.

    >>> tracker = SloTracker(default_objectives())
    >>> tracker.record(latency_seconds=0.2, ok=True, now=1.0, venue="office")
    """

    def __init__(
        self,
        objectives: tuple[SloObjective, ...] | list[SloObjective] = (),
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.objectives: list[SloObjective] = []
        self.registry = registry
        self._windows: dict[
            tuple[str, tuple[tuple[str, str], ...]], _ScopeWindow
        ] = {}
        names = set()
        for objective in objectives:
            if objective.name in names:
                raise ValueError(f"duplicate objective name {objective.name!r}")
            names.add(objective.name)
            self.objectives.append(objective)

    def add_objective(self, objective: SloObjective) -> None:
        if any(existing.name == objective.name for existing in self.objectives):
            raise ValueError(f"duplicate objective name {objective.name!r}")
        self.objectives.append(objective)

    @property
    def alerts_fired(self) -> int:
        return sum(window.alerts for window in self._windows.values())

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def record(
        self,
        latency_seconds: float | None = None,
        ok: bool = True,
        now: float | None = None,
        **scope: str,
    ) -> None:
        """Feed one outcome to every objective under ``scope`` labels."""
        if now is None:
            now = time.monotonic()
        key = _scope_key({k: str(v) for k, v in scope.items()})
        for objective in self.objectives:
            bad = not objective.is_good(ok, latency_seconds)
            window = self._windows.get((objective.name, key))
            if window is None:
                window = self._windows[(objective.name, key)] = _ScopeWindow()
            window.add(float(now), bad, objective.window_seconds)
            self._evaluate(objective, key, window, float(now))

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _gauge(self, name: str, help: str, labels: dict[str, str], value: float) -> None:
        if self.registry is not None:
            self.registry.gauge(name, help=help, **labels).set(value)

    def _evaluate(
        self,
        objective: SloObjective,
        key: tuple[tuple[str, str], ...],
        window: _ScopeWindow,
        now: float,
    ) -> None:
        labels = {"objective": objective.name, **dict(key)}
        slow_events = len(window.events)
        slow_rate = window.bad / slow_events if slow_events else 0.0
        fast_events, fast_bad = window.fast_counts(
            now, objective.fast_window_seconds
        )
        fast_rate = fast_bad / fast_events if fast_events else 0.0
        budget = objective.budget
        burn_slow = slow_rate / budget
        burn_fast = fast_rate / budget
        remaining = 1.0 - burn_slow
        self._gauge(
            "slo_budget_remaining",
            "fraction of the sliding-window error budget left (1 = untouched)",
            labels,
            remaining,
        )
        self._gauge(
            "slo_burn_rate",
            "error-budget burn rate (1.0 spends the budget over the window)",
            {**labels, "window": "slow"},
            burn_slow,
        )
        self._gauge(
            "slo_burn_rate",
            "error-budget burn rate (1.0 spends the budget over the window)",
            {**labels, "window": "fast"},
            burn_fast,
        )
        alerting = (
            fast_events >= objective.min_events
            and burn_fast >= objective.fast_burn_threshold
            and burn_slow >= objective.slow_burn_threshold
        )
        if alerting and not window.alerting:
            window.alerts += 1
            if self.registry is not None:
                self.registry.counter(
                    "slo_burn_alerts_total",
                    help="multi-window burn-rate alert excursions",
                    **labels,
                ).inc()
            emit_event(
                "slo.burn_alert",
                objective=objective.name,
                burn_fast=round(burn_fast, 4),
                burn_slow=round(burn_slow, 4),
                budget_remaining=round(remaining, 4),
                **dict(key),
            )
        window.alerting = alerting

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def report(self) -> dict[str, Any]:
        """JSON-ready budget/burn summary (the ``slo_report.json`` schema)."""
        objectives_out = []
        for objective in self.objectives:
            scopes = []
            for (name, key), window in sorted(self._windows.items()):
                if name != objective.name:
                    continue
                slow_events = len(window.events)
                slow_rate = window.bad / slow_events if slow_events else 0.0
                burn_slow = slow_rate / objective.budget
                scopes.append(
                    {
                        "scope": dict(key),
                        "window_events": slow_events,
                        "window_bad": window.bad,
                        "total_events": window.total_events,
                        "total_bad": window.total_bad,
                        "error_rate": slow_rate,
                        "burn_rate": burn_slow,
                        "budget_remaining": 1.0 - burn_slow,
                        "alerting": window.alerting,
                        "alerts_fired": window.alerts,
                    }
                )
            objectives_out.append(
                {
                    "name": objective.name,
                    "kind": (
                        "latency"
                        if objective.threshold_seconds is not None
                        else "availability"
                    ),
                    "target": objective.target,
                    "threshold_seconds": objective.threshold_seconds,
                    "window_seconds": objective.window_seconds,
                    "fast_window_seconds": objective.fast_window_seconds,
                    "scopes": scopes,
                }
            )
        return {
            "objectives": objectives_out,
            "alerts_fired": self.alerts_fired,
        }

    def write_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.report(), handle, indent=2, sort_keys=True)
            handle.write("\n")


# ----------------------------------------------------------------------
# Contextual propagation (mirrors use_registry / use_event_log)
# ----------------------------------------------------------------------

_TRACKER_STACK: list[SloTracker] = []


def current_slo_tracker() -> SloTracker | None:
    """The innermost :func:`use_slo_tracker` tracker, or ``None``."""
    return _TRACKER_STACK[-1] if _TRACKER_STACK else None


@contextmanager
def use_slo_tracker(tracker: SloTracker) -> Iterator[SloTracker]:
    """Make ``tracker`` the contextual SLO sink inside the block.

    Components that serve queries (the :class:`repro.serving`
    frontend) resolve their tracker at construction: explicit argument
    first, then this contextual tracker, else none.
    """
    _TRACKER_STACK.append(tracker)
    try:
        yield tracker
    finally:
        _TRACKER_STACK.pop()
