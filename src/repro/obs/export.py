"""Exporters: Prometheus text exposition format and a round-trip parser.

``render_prometheus`` emits the version-0.0.4 text format (``# HELP`` /
``# TYPE`` headers, cumulative ``_bucket{le=...}`` samples for
histograms, escaped help text and label values).  ``parse_prometheus``
reads that format back into flat samples so tests can prove the export
round-trips a registry exactly — and so scrapes from a real Prometheus
endpoint stay byte-compatible if one is ever bolted on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry

__all__ = ["parse_prometheus", "render_prometheus", "write_json"]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Registry → Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    samples_by_family: dict[str, list[str]] = {}
    # Emit HELP/TYPE once per metric family, then that family's samples.
    for instrument in registry.instruments():
        if instrument.name not in seen_headers:
            seen_headers.add(instrument.name)
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {_escape_help(instrument.help)}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            samples_by_family[instrument.name] = []
            lines.append(f"__SAMPLES__{instrument.name}")
    for name, labels, value in registry.samples():
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in samples_by_family:
                family = name[: -len(suffix)]
                break
        target = samples_by_family.get(name, samples_by_family.get(family))
        target.append(f"{name}{_render_labels(labels)} {_format_value(value)}")
    out: list[str] = []
    for line in lines:
        if line.startswith("__SAMPLES__"):
            out.extend(samples_by_family[line[len("__SAMPLES__"):]])
        else:
            out.append(line)
    return "\n".join(out) + "\n" if out else ""


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(char)
                out.append(nxt)
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _parse_labels(body: str) -> tuple[tuple[str, str], ...]:
    labels: list[tuple[str, str]] = []
    index = 0
    while index < len(body):
        equals = body.index("=", index)
        name = body[index:equals].strip().lstrip(",").strip()
        if body[equals + 1] != '"':
            raise ValueError(f"malformed label value in {body!r}")
        cursor = equals + 2
        raw: list[str] = []
        while cursor < len(body):
            char = body[cursor]
            if char == "\\":
                raw.append(body[cursor : cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        labels.append((name, _unescape_label_value("".join(raw))))
        index = cursor + 1
    return tuple(labels)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> list[tuple[str, tuple[tuple[str, str], ...], float]]:
    """Prometheus text format → flat ``(name, labels, value)`` samples.

    The inverse of :func:`render_prometheus` for the subset this module
    emits; compare against :meth:`MetricsRegistry.samples` to verify a
    round trip.
    """
    samples: list[tuple[str, tuple[tuple[str, str], ...], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            closing = line.rindex("}")
            labels = _parse_labels(line[line.index("{") + 1 : closing])
            value_text = line[closing + 1 :].strip().split()[0]
        else:
            parts = line.split()
            name, value_text = parts[0], parts[1]
            labels = ()
        samples.append((name, labels, _parse_value(value_text)))
    return samples


def write_json(registry: "MetricsRegistry", path: str) -> None:
    """Convenience alias for :meth:`MetricsRegistry.write_json`."""
    registry.write_json(path)
