"""Exporters: Prometheus text, Chrome trace-event JSON, NDJSON spans.

``render_prometheus`` emits the version-0.0.4 text format (``# HELP`` /
``# TYPE`` headers, cumulative ``_bucket{le=...}`` samples for
histograms, escaped help text and label values).  ``parse_prometheus``
reads that format back into flat samples so tests can prove the export
round-trips a registry exactly — and so scrapes from a real Prometheus
endpoint stay byte-compatible if one is ever bolted on.

``chrome_trace_events`` / ``write_chrome_trace`` render root spans as
Chrome trace-event JSON ("X" complete events, microsecond ``ts`` /
``dur``) loadable in ``chrome://tracing`` and Perfetto; ``pid`` is the
producing worker process and ``tid`` a per-trace lane, so every query
renders as its own row.  ``write_ndjson`` emits the same spans as a
flat structured event log, one JSON object per line.
"""

from __future__ import annotations

import json
import os
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tracing import Span

__all__ = [
    "chrome_trace_events",
    "parse_prometheus",
    "render_prometheus",
    "span_records",
    "write_chrome_trace",
    "write_json",
    "write_ndjson",
]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value != value:  # NaN
        return "NaN"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    )
    return "{" + inner + "}"


def render_prometheus(registry: "MetricsRegistry") -> str:
    """Registry → Prometheus text exposition format."""
    lines: list[str] = []
    seen_headers: set[str] = set()
    samples_by_family: dict[str, list[str]] = {}
    # Emit HELP/TYPE once per metric family, then that family's samples.
    for instrument in registry.instruments():
        if instrument.name not in seen_headers:
            seen_headers.add(instrument.name)
            if instrument.help:
                lines.append(f"# HELP {instrument.name} {_escape_help(instrument.help)}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            samples_by_family[instrument.name] = []
            lines.append(f"__SAMPLES__{instrument.name}")
    for name, labels, value in registry.samples():
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in samples_by_family:
                family = name[: -len(suffix)]
                break
        target = samples_by_family.get(name, samples_by_family.get(family))
        target.append(f"{name}{_render_labels(labels)} {_format_value(value)}")
    out: list[str] = []
    for line in lines:
        if line.startswith("__SAMPLES__"):
            out.extend(samples_by_family[line[len("__SAMPLES__"):]])
        else:
            out.append(line)
    return "\n".join(out) + "\n" if out else ""


def _unescape_label_value(value: str) -> str:
    out: list[str] = []
    index = 0
    while index < len(value):
        char = value[index]
        if char == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:
                out.append(char)
                out.append(nxt)
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)


def _parse_labels(body: str) -> tuple[tuple[str, str], ...]:
    labels: list[tuple[str, str]] = []
    index = 0
    while index < len(body):
        equals = body.index("=", index)
        name = body[index:equals].strip().lstrip(",").strip()
        if body[equals + 1] != '"':
            raise ValueError(f"malformed label value in {body!r}")
        cursor = equals + 2
        raw: list[str] = []
        while cursor < len(body):
            char = body[cursor]
            if char == "\\":
                raw.append(body[cursor : cursor + 2])
                cursor += 2
                continue
            if char == '"':
                break
            raw.append(char)
            cursor += 1
        labels.append((name, _unescape_label_value("".join(raw))))
        index = cursor + 1
    return tuple(labels)


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_prometheus(text: str) -> list[tuple[str, tuple[tuple[str, str], ...], float]]:
    """Prometheus text format → flat ``(name, labels, value)`` samples.

    The inverse of :func:`render_prometheus` for the subset this module
    emits; compare against :meth:`MetricsRegistry.samples` to verify a
    round trip.
    """
    samples: list[tuple[str, tuple[tuple[str, str], ...], float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            closing = line.rindex("}")
            labels = _parse_labels(line[line.index("{") + 1 : closing])
            value_text = line[closing + 1 :].strip().split()[0]
        else:
            parts = line.split()
            name, value_text = parts[0], parts[1]
            labels = ()
        samples.append((name, labels, _parse_value(value_text)))
    return samples


def write_json(registry: "MetricsRegistry", path: str) -> None:
    """Convenience alias for :meth:`MetricsRegistry.write_json`."""
    registry.write_json(path)


# ---------------------------------------------------------------------------
# Trace exporters
# ---------------------------------------------------------------------------


def _span_pid(root: "Span") -> int:
    """Chrome ``pid`` lane: the worker that produced the root span.

    Worker-collected roots carry a ``worker`` attribute (set by
    :mod:`repro.parallel` on merge-back); parent-side roots fall back to
    this process's pid.
    """
    worker = root.attributes.get("worker")
    try:
        return int(worker)
    except (TypeError, ValueError):
        return os.getpid()


def chrome_trace_events(roots: Iterable["Span"]) -> list[dict[str, Any]]:
    """Root spans → Chrome trace-event "X" (complete) events.

    Timestamps derive from ``start_unix`` (the only clock comparable
    across processes), rebased to the earliest span so the trace opens
    at t=0; ``ts`` and ``dur`` are microseconds per the trace-event
    spec.  Each ``trace_id`` gets its own ``tid`` lane, so one query
    renders as one row with its client/channel/oracle/server spans.
    """
    roots = list(roots)
    if not roots:
        return []
    base = min(span.start_unix for root in roots for span in root.iter_spans())
    lanes: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for root in roots:
        pid = _span_pid(root)
        tid = lanes.setdefault(root.trace_id, len(lanes) + 1)
        for span in root.iter_spans():
            payload = span.to_dict()
            args = dict(payload["attributes"])
            args["trace_id"] = span.trace_id
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": (span.start_unix - base) * 1e6,
                    "dur": max(span.duration_seconds, 0.0) * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    return events


def write_chrome_trace(roots: Iterable["Span"], path: str) -> None:
    """Write root spans as a ``chrome://tracing``/Perfetto-loadable file."""
    roots = list(roots)
    base = (
        min(span.start_unix for root in roots for span in root.iter_spans())
        if roots
        else 0.0
    )
    payload = {
        "traceEvents": chrome_trace_events(roots),
        "displayTimeUnit": "ms",
        "metadata": {"base_unix_seconds": base},
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")


def span_records(roots: Iterable["Span"]) -> list[dict[str, Any]]:
    """Root spans → flat per-span records (the NDJSON line payloads)."""
    records: list[dict[str, Any]] = []
    for root in roots:
        for span in root.iter_spans():
            payload = span.to_dict()
            payload.pop("children")
            payload["type"] = "span"
            records.append(payload)
    return records


def write_ndjson(roots: Iterable["Span"], path: str) -> None:
    """Write root spans as newline-delimited JSON, one span per line."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in span_records(roots):
            handle.write(json.dumps(record))
            handle.write("\n")
