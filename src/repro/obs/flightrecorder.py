"""Flight recorder: keep the K slowest query traces, drop the rest.

A long experiment produces thousands of per-query traces; what a perf
investigation needs is the pathological tail with full span trees and
attributes intact.  :class:`FlightRecorder` is a bounded retention
buffer (a min-heap keyed on trace duration playing the role of the
classic ring buffer): feed it every :class:`repro.obs.QueryTrace` and
it keeps the ``capacity`` slowest, evicting the rest — every eviction
counted in ``flight_recorder_evicted_total`` so the data loss is
visible, never silent (the same contract as ``Tracer`` root trimming).

Trace duration is the query's busy time — each root leg's extent,
summed (see :attr:`repro.obs.QueryTrace.duration_seconds`) — so
*simulated* spans (the channel model's transfer seconds) count toward
slowness exactly as they would on a real uplink, while idle wall-clock
between a query's legs does not.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterable

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import QueryTrace, Span

__all__ = ["FlightRecorder", "format_trace"]


def _format_span(span: Span, depth: int, lines: list[str]) -> None:
    attrs = ""
    if span.attributes:
        inner = ", ".join(f"{k}={v}" for k, v in span.attributes.items())
        attrs = f"  [{inner}]"
    lines.append(
        f"{'  ' * depth}{span.name} {span.duration_seconds * 1e3:.3f} ms{attrs}"
    )
    for child in span.children:
        _format_span(child, depth + 1, lines)


def format_trace(trace: QueryTrace) -> str:
    """Human-readable span-tree rendering of one query trace."""
    lines = [
        f"trace {trace.trace_id}: {trace.duration_seconds * 1e3:.3f} ms, "
        f"{trace.num_spans} spans in {len(trace.roots)} roots"
    ]
    for root in trace.roots:
        _format_span(root, 1, lines)
    return "\n".join(lines)


class FlightRecorder:
    """Bounded buffer retaining the ``capacity`` slowest query traces."""

    def __init__(
        self, capacity: int, registry: MetricsRegistry | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.registry = registry
        self.evicted = 0
        self._sequence = 0
        # Min-heap of (duration, sequence, trace): the fastest retained
        # trace sits at the top, ready to be displaced by anything slower.
        self._heap: list[tuple[float, int, QueryTrace]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def observe(self, trace: QueryTrace) -> None:
        """Offer one trace; it is retained iff it ranks in the slowest K."""
        entry = (trace.duration_seconds, self._sequence, trace)
        self._sequence += 1
        if len(self._heap) < self.capacity:
            heapq.heappush(self._heap, entry)
            return
        if entry[0] > self._heap[0][0]:
            heapq.heappushpop(self._heap, entry)
        self._record_eviction()

    def observe_all(self, traces: Iterable[QueryTrace]) -> None:
        for trace in traces:
            self.observe(trace)

    def _record_eviction(self) -> None:
        self.evicted += 1
        if self.registry is not None:
            self.registry.counter(
                "flight_recorder_evicted_total",
                help="query traces evicted from the flight recorder",
            ).inc()

    def slowest(self) -> list[QueryTrace]:
        """Retained traces, slowest first."""
        return [
            entry[2]
            for entry in sorted(self._heap, key=lambda e: (-e[0], e[1]))
        ]

    def to_dict(self) -> dict[str, Any]:
        return {
            "capacity": self.capacity,
            "evicted": self.evicted,
            "traces": [trace.to_dict() for trace in self.slowest()],
        }

    def dump(self) -> str:
        """Text rendering of every retained trace, slowest first."""
        traces = self.slowest()
        header = (
            f"flight recorder: {len(traces)}/{self.capacity} traces retained, "
            f"{self.evicted} evicted"
        )
        return "\n".join([header] + [format_trace(trace) for trace in traces])
