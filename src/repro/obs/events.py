"""Structured event log: the discrete incidents metrics can only count.

Counters say *how many* queries were shed; they cannot say which venue,
on which shard, inside which query's trace.  :class:`EventLog` records
those discrete incidents — admission rejects, degradation-ladder
entries, retry exhaustion, snapshot quarantine, shard topology changes,
SLO burn alerts — as structured records that serialize to NDJSON (one
JSON object per line, the same framing :func:`repro.obs.write_ndjson`
uses for spans).

Every record carries:

* ``seq`` — a per-log sequence number (total order within one log);
* ``ts`` — epoch seconds at emission (wall-clock; simulated-time fields
  travel in the event's own payload when relevant);
* ``kind`` — a dotted event name (``admission.reject``,
  ``degrade.step``, ``retry.exhausted``, ``snapshot.quarantine``,
  ``shard.add``, ``shard.remove``, ``slo.burn_alert``);
* ``trace_id`` / ``span_id`` — lifted from the ambient tracing state
  (the open span, else the installed :class:`repro.obs.TraceContext`),
  so an event joins the same per-query story the span tree tells;
* the emitter's keyword fields verbatim.

Propagation mirrors the registry/collector pattern: install a log with
:func:`use_event_log`, emit from anywhere with :func:`emit_event` (a
no-op without an installed log — zero overhead on unobserved runs), and
ship worker logs back through :mod:`repro.parallel` with the
``state()`` / ``merge_state()`` protocol (chunk-ordered, so a
``workers=N`` run replays the same event sequence as serial).
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from typing import Any, Iterator

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import current_span, current_trace_context

__all__ = [
    "EventLog",
    "current_event_log",
    "emit_event",
    "use_event_log",
]

_DEFAULT_CAPACITY = 10_000


class EventLog:
    """Bounded in-memory event sink with NDJSON export.

    Oldest records are dropped past ``capacity`` (never silently: the
    drop count is retained and mirrored into
    ``obs_events_dropped_total`` when a registry is attached).
    """

    def __init__(
        self,
        capacity: int = _DEFAULT_CAPACITY,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.registry = registry
        self.records: list[dict[str, Any]] = []
        self.dropped = 0
        self._seq = 0

    def __len__(self) -> int:
        return len(self.records)

    def emit(self, kind: str, **fields: Any) -> dict[str, Any]:
        """Append one event; returns the stored record."""
        record: dict[str, Any] = {
            "seq": self._seq,
            "ts": time.time(),
            "kind": str(kind),
        }
        self._seq += 1
        span = current_span()
        if span is not None:
            record["trace_id"] = span.trace_id
            record["span_id"] = span.span_id
        else:
            context = current_trace_context()
            if context is not None:
                record["trace_id"] = context.trace_id
                record["span_id"] = context.span_id
        for key, value in fields.items():
            if key not in record:
                record[key] = value
        self.records.append(record)
        if self.registry is not None:
            self.registry.counter(
                "obs_events_total",
                help="structured events emitted, by kind",
                kind=record["kind"],
            ).inc()
        if len(self.records) > self.capacity:
            overflow = len(self.records) - self.capacity
            del self.records[:overflow]
            self.dropped += overflow
            if self.registry is not None:
                self.registry.counter(
                    "obs_events_dropped_total",
                    help="events trimmed from a bounded EventLog",
                ).inc(overflow)
        return record

    def tail(self, count: int = 10) -> list[dict[str, Any]]:
        """The most recent ``count`` records, oldest first."""
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        return self.records[-count:] if count else []

    def by_kind(self, kind: str) -> list[dict[str, Any]]:
        return [record for record in self.records if record["kind"] == kind]

    def clear(self) -> None:
        self.records.clear()

    # -- export ---------------------------------------------------------

    def to_ndjson(self) -> str:
        return "".join(
            json.dumps(record, sort_keys=True, default=str) + "\n"
            for record in self.records
        )

    def write_ndjson(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_ndjson())

    # -- cross-process merge (repro.parallel ship-back) -----------------

    def state(self) -> dict[str, Any]:
        """Picklable snapshot for :meth:`merge_state`."""
        return {"records": list(self.records), "dropped": self.dropped}

    def merge_state(self, state: dict[str, Any]) -> None:
        """Fold a worker log in: records append in the caller's order.

        Callers merge chunk states in chunk order (the
        :mod:`repro.parallel` discipline), so the merged sequence is
        deterministic regardless of worker completion order.  Sequence
        numbers are reassigned to keep the merged log totally ordered.
        """
        self.dropped += int(state.get("dropped", 0))
        for record in state.get("records", ()):
            merged = dict(record)
            merged["seq"] = self._seq
            self._seq += 1
            self.records.append(merged)
        if len(self.records) > self.capacity:
            overflow = len(self.records) - self.capacity
            del self.records[:overflow]
            self.dropped += overflow


# ----------------------------------------------------------------------
# Contextual propagation (mirrors use_registry / use_collector)
# ----------------------------------------------------------------------

_LOG_STACK: list[EventLog] = []


def current_event_log() -> EventLog | None:
    """The innermost :func:`use_event_log` log, or ``None``."""
    return _LOG_STACK[-1] if _LOG_STACK else None


@contextmanager
def use_event_log(log: EventLog) -> Iterator[EventLog]:
    """Deliver :func:`emit_event` calls inside the block to ``log``."""
    _LOG_STACK.append(log)
    try:
        yield log
    finally:
        _LOG_STACK.pop()


def emit_event(kind: str, **fields: Any) -> dict[str, Any] | None:
    """Emit into the contextual log; ``None`` (and no work) without one."""
    log = current_event_log()
    if log is None:
        return None
    return log.emit(kind, **fields)
