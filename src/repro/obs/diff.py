"""Metrics regression gate: compare two metrics JSON snapshots.

``python -m repro metrics-diff BASELINE CURRENT`` turns two
:meth:`repro.obs.MetricsRegistry.to_dict` snapshots (as written by
``--metrics-json``) into a pass/fail verdict: every scalar named in the
*baseline* must exist in *current* and sit within
``abs_tol + rel_tol * |baseline|`` of its baseline value.  The baseline
defines the contract — metrics present only in the current snapshot are
ignored, so adding instrumentation never breaks the gate, while a
counter that silently vanishes (an instrumented code path stopped
running) is a violation, not a skip.

Scalars compared: counter values, gauge values, and histogram
*observation counts* (exposed as ``<name>.count``).  Histogram sums and
quantiles are host-dependent wall-clock and deliberately excluded from
the default contract; CI baselines should name deterministic counters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fnmatch import fnmatch
from typing import Any

__all__ = ["MetricViolation", "diff_metrics", "format_report", "scalar_samples"]


def scalar_samples(snapshot: dict[str, Any]) -> dict[str, float]:
    """Snapshot dict → flat ``{scalar_name: value}`` comparison samples.

    Snapshot keys already carry their labels rendered as
    ``name{k=v,...}`` (see :meth:`MetricsRegistry.to_dict`), so the key
    is used verbatim.
    """
    samples: dict[str, float] = {}
    for section in ("counters", "gauges"):
        for name, entry in snapshot.get(section, {}).items():
            samples[name] = float(entry["value"])
    for section in ("histograms", "sketches"):
        for name, entry in snapshot.get(section, {}).items():
            samples[name + ".count"] = float(entry["count"])
    return samples


@dataclass(frozen=True)
class MetricViolation:
    """One scalar outside the baseline contract."""

    name: str
    baseline: float
    current: float | None  # None: present in baseline, missing in current
    allowed: float

    def describe(self) -> str:
        if self.current is None:
            return f"{self.name}: baseline {self.baseline:g} but missing in current"
        return (
            f"{self.name}: current {self.current:g} vs baseline {self.baseline:g} "
            f"(|delta| {abs(self.current - self.baseline):g} > allowed {self.allowed:g})"
        )


def diff_metrics(
    baseline: dict[str, Any],
    current: dict[str, Any],
    rel_tol: float = 0.25,
    abs_tol: float = 0.0,
    include: list[str] | None = None,
) -> tuple[int, list[MetricViolation]]:
    """Check ``current`` against the ``baseline`` contract.

    Returns ``(num_checked, violations)``.  ``include`` restricts the
    contract to baseline scalars matching any of the glob patterns.
    """
    if rel_tol < 0 or abs_tol < 0:
        raise ValueError("tolerances must be non-negative")
    base = scalar_samples(baseline)
    cur = scalar_samples(current)
    if include:
        base = {
            name: value
            for name, value in base.items()
            if any(fnmatch(name, pattern) for pattern in include)
        }
    violations: list[MetricViolation] = []
    for name in sorted(base):
        base_value = base[name]
        allowed = abs_tol + rel_tol * abs(base_value)
        if name not in cur:
            violations.append(
                MetricViolation(
                    name=name, baseline=base_value, current=None, allowed=allowed
                )
            )
            continue
        # NaN never satisfies a comparison, so the naive `delta > allowed`
        # test would wave a NaN current value through; exact equality
        # keeps matching infinities (and NaN baselines matched by NaN
        # currents) passing, everything else falls through to the delta
        # check, where a NaN delta is always a violation.
        current_value = cur[name]
        if current_value == base_value or (
            math.isnan(base_value) and math.isnan(current_value)
        ):
            continue
        # A non-finite baseline poisons `allowed` (inf tolerance accepts
        # anything), so past the exact-match check above it only fails.
        delta = abs(current_value - base_value)
        if math.isnan(delta) or delta > allowed or not math.isfinite(base_value):
            violations.append(
                MetricViolation(
                    name=name,
                    baseline=base_value,
                    current=current_value,
                    allowed=allowed,
                )
            )
    return len(base), violations


def format_report(num_checked: int, violations: list[MetricViolation]) -> str:
    """One-line-per-violation report plus a summary verdict line."""
    lines = [violation.describe() for violation in violations]
    verdict = "FAIL" if violations else "OK"
    lines.append(
        f"metrics-diff: {verdict} — {len(violations)} violation(s) "
        f"across {num_checked} checked scalar(s)"
    )
    return "\n".join(lines)
