"""``repro.obs`` — the observability layer of the reproduction.

Dependency-free metrics (:class:`Counter` / :class:`Gauge` /
:class:`Histogram` in a :class:`MetricsRegistry`), request-scoped
tracing (:class:`Span` trees with ``trace_id`` identity, propagated via
:class:`TraceContext` and gathered by a :class:`TraceCollector`), a
:class:`FlightRecorder` retaining the slowest query traces, exporters
(JSON / Prometheus text / Chrome trace-event JSON / NDJSON), and a
metrics snapshot differ (:func:`diff_metrics`) behind the
``metrics-diff`` CLI gate.  The offload pipeline — client, oracle,
server, uplink — reports into whichever registry is current (see
:func:`use_registry`), which is how ``python -m repro <experiment>
--metrics-json out.json`` captures one coherent snapshot across every
stage; ``--trace-out trace.json`` does the same for spans.

Typical use::

    from repro.obs import MetricsRegistry, TraceCollector, use_collector, use_registry

    registry = MetricsRegistry()
    collector = TraceCollector(registry=registry)
    with use_registry(registry), use_collector(collector):
        ...  # build clients/servers, run frames
    print(registry.to_prometheus())
    registry.write_json("metrics.json")
    write_chrome_trace(collector.roots, "trace.json")
"""

from repro.obs.diff import (
    MetricViolation,
    diff_metrics,
    format_report,
    scalar_samples,
)
from repro.obs.events import (
    EventLog,
    current_event_log,
    emit_event,
    use_event_log,
)
from repro.obs.export import (
    chrome_trace_events,
    parse_prometheus,
    render_prometheus,
    span_records,
    write_chrome_trace,
    write_ndjson,
)
from repro.obs.flightrecorder import FlightRecorder, format_trace
from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_MAX_LABEL_SETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    get_global_registry,
    use_registry,
)
from repro.obs.sketch import DEFAULT_QUANTILES, QuantileSketch
from repro.obs.slo import (
    SloObjective,
    SloTracker,
    current_slo_tracker,
    default_objectives,
    use_slo_tracker,
)
from repro.obs.top import parse_metric_key, render_dashboard, run_top
from repro.obs.tracing import (
    QueryTrace,
    Span,
    TraceCollector,
    TraceContext,
    Tracer,
    current_collector,
    current_span,
    current_trace_context,
    group_traces,
    isolated_trace_state,
    record_span,
    trace_span,
    use_collector,
    use_trace_context,
)

__all__ = [
    "Counter",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "DEFAULT_QUANTILES",
    "EventLog",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MetricViolation",
    "MetricsRegistry",
    "QuantileSketch",
    "QueryTrace",
    "SloObjective",
    "SloTracker",
    "Span",
    "TraceCollector",
    "TraceContext",
    "Tracer",
    "chrome_trace_events",
    "current_collector",
    "current_event_log",
    "current_registry",
    "current_slo_tracker",
    "current_span",
    "current_trace_context",
    "default_objectives",
    "diff_metrics",
    "emit_event",
    "format_report",
    "format_trace",
    "get_global_registry",
    "group_traces",
    "isolated_trace_state",
    "parse_metric_key",
    "parse_prometheus",
    "record_span",
    "render_dashboard",
    "render_prometheus",
    "resolve_registry",
    "run_top",
    "scalar_samples",
    "span_records",
    "trace_span",
    "use_collector",
    "use_event_log",
    "use_registry",
    "use_slo_tracker",
    "use_trace_context",
    "write_chrome_trace",
    "write_ndjson",
]


def resolve_registry(registry: "MetricsRegistry | None") -> "MetricsRegistry":
    """Explicit registry > contextual registry > a fresh private one.

    The resolution rule every instrumented component applies at
    construction time, so tests get isolated registries by default
    while experiment drivers share one via :func:`use_registry`.
    """
    if registry is not None:
        return registry
    contextual = current_registry()
    if contextual is not None:
        return contextual
    return MetricsRegistry()
