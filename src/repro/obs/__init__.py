"""``repro.obs`` — the observability layer of the reproduction.

Dependency-free metrics (:class:`Counter` / :class:`Gauge` /
:class:`Histogram` in a :class:`MetricsRegistry`), nested tracing
:class:`Span`\\ s, and exporters (``to_dict`` / JSON file / Prometheus
text format).  The offload pipeline — client, oracle, server, uplink —
reports into whichever registry is current (see :func:`use_registry`),
which is how ``python -m repro <experiment> --metrics-json out.json``
captures one coherent snapshot across every stage.

Typical use::

    from repro.obs import MetricsRegistry, use_registry

    registry = MetricsRegistry()
    with use_registry(registry):
        ...  # build clients/servers, run frames
    print(registry.to_prometheus())
    registry.write_json("metrics.json")
"""

from repro.obs.export import parse_prometheus, render_prometheus
from repro.obs.metrics import (
    DEFAULT_BYTE_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_registry,
    get_global_registry,
    use_registry,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BYTE_BUCKETS",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "current_registry",
    "get_global_registry",
    "parse_prometheus",
    "render_prometheus",
    "resolve_registry",
    "use_registry",
]


def resolve_registry(registry: "MetricsRegistry | None") -> "MetricsRegistry":
    """Explicit registry > contextual registry > a fresh private one.

    The resolution rule every instrumented component applies at
    construction time, so tests get isolated registries by default
    while experiment drivers share one via :func:`use_registry`.
    """
    if registry is not None:
        return registry
    contextual = current_registry()
    if contextual is not None:
        return contextual
    return MetricsRegistry()
