"""Argument validation helpers.

Raising early with a message that names the offending parameter keeps the
numeric code paths free of silent shape/unit mistakes.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_positive", "check_probability", "check_in_range", "check_shape"]


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")


def check_probability(name: str, value: float) -> None:
    """Raise :class:`ValueError` unless ``value`` lies in ``[0, 1]``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise :class:`ValueError` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ValueError(f"{name} must be in [{low}, {high}], got {value}")


def check_shape(name: str, array: np.ndarray, shape: tuple[int | None, ...]) -> None:
    """Raise :class:`ValueError` unless ``array`` matches ``shape``.

    ``None`` entries in ``shape`` match any extent along that axis.
    """
    if array.ndim != len(shape):
        raise ValueError(
            f"{name} must have {len(shape)} dimensions, got shape {array.shape}"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected is not None and actual != expected:
            raise ValueError(
                f"{name} axis {axis} must have extent {expected}, got shape {array.shape}"
            )
