"""Byte-size helpers used by the bandwidth, memory, and codec experiments."""

from __future__ import annotations

import gzip

import numpy as np

__all__ = ["KIB", "MIB", "GIB", "format_bytes", "gzip_size", "ndarray_nbytes"]

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary unit suffix.

    >>> format_bytes(51.2 * 1024)
    '51.2 KiB'
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            if unit == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {unit}"
        value /= 1024
    raise AssertionError("unreachable")


def gzip_size(payload: bytes, level: int = 9) -> int:
    """Size of ``payload`` after GZIP compression at the given level."""
    return len(gzip.compress(payload, compresslevel=level))


def ndarray_nbytes(*arrays: np.ndarray) -> int:
    """Total in-memory footprint of the given arrays."""
    return int(sum(array.nbytes for array in arrays))
