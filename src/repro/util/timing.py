"""Wall-clock measurement helpers for the latency experiments (Fig. 16)."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Stopwatch", "time_call"]


@dataclass
class Stopwatch:
    """Accumulates named wall-clock intervals.

    >>> watch = Stopwatch()
    >>> with watch.measure("sift"):
    ...     _ = sum(range(1000))
    >>> watch.total("sift") > 0
    True
    """

    intervals: dict[str, list[float]] = field(default_factory=dict)

    def measure(self, name: str) -> "_Interval":
        return _Interval(self, name)

    def record(self, name: str, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"interval must be non-negative, got {seconds}")
        self.intervals.setdefault(name, []).append(seconds)

    def total(self, name: str) -> float:
        return sum(self.intervals.get(name, []))

    def count(self, name: str) -> int:
        return len(self.intervals.get(name, []))

    def samples(self, name: str) -> list[float]:
        return list(self.intervals.get(name, []))


class _Interval:
    def __init__(self, watch: Stopwatch, name: str) -> None:
        self._watch = watch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_Interval":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._watch.record(self._name, time.perf_counter() - self._start)


def time_call(func: Callable[..., Any], *args: Any, **kwargs: Any) -> tuple[Any, float]:
    """Call ``func`` and return ``(result, elapsed_seconds)``."""
    start = time.perf_counter()
    result = func(*args, **kwargs)
    return result, time.perf_counter() - start
