"""Deterministic utilities shared by every VisualPrint subsystem.

The reproduction is simulation-heavy, so every stochastic component draws
from an explicitly seeded :class:`numpy.random.Generator` obtained through
:func:`repro.util.rng.rng_for`.  That keeps experiments repeatable across
runs and across machines without any global seeding side effects.
"""

from repro.util.rng import derive_seed, rng_for, spawn_children
from repro.util.sizes import (
    GIB,
    KIB,
    MIB,
    format_bytes,
    gzip_size,
    ndarray_nbytes,
)
from repro.util.timing import Stopwatch, time_call
from repro.util.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_shape,
)

__all__ = [
    "GIB",
    "KIB",
    "MIB",
    "Stopwatch",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_shape",
    "derive_seed",
    "format_bytes",
    "gzip_size",
    "ndarray_nbytes",
    "rng_for",
    "spawn_children",
    "time_call",
]
