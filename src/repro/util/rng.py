"""Seeded random-number streams.

Every stochastic piece of the reproduction (scene synthesis, LSH
projections, pose drift, channel jitter, ...) takes its randomness from a
named stream derived from a single experiment seed.  Streams with
different names are statistically independent; the same ``(seed, name)``
pair always yields the same stream.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "rng_for", "spawn_children"]


def derive_seed(seed: int, name: str) -> int:
    """Derive a child seed from ``seed`` and a human-readable stream name.

    Uses SHA-256 so unrelated names never collide in practice and the
    derivation is stable across Python versions (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def rng_for(seed: int, name: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for stream ``name``.

    >>> a = rng_for(7, "lsh")
    >>> b = rng_for(7, "lsh")
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.default_rng(derive_seed(seed, name))


def spawn_children(seed: int, name: str, count: int) -> list[np.random.Generator]:
    """Return ``count`` independent generators under one stream name."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [rng_for(seed, f"{name}/{index}") for index in range(count)]
