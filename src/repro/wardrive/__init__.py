"""Wardriving substrate: a simulated Project-Tango rig.

The paper wardrives three venues with a Google Tango: the rig reports
RGB keypoints, an IR depth map, and a 6-DoF pose tracked by VSLAM —
where the pose "naturally reflect[s] some amount of drift from true
positions".  Tango hardware is unavailable, so this package simulates
the rig against a ground-truth feature-level environment:

* :class:`IndoorEnvironment` — office / cafeteria / grocery worlds whose
  walls carry *landmarks*: 3D points with SIFT-style descriptors, split
  into globally-unique content and building-wide repeated motifs.
* :class:`TangoRig` — captures snapshots along a walking path; observed
  pixels/depths/descriptors are noisy, and the reported pose drifts via
  a dead-reckoning random walk (configurable, so the ICP ablation can
  measure correction).
* :func:`icp_align` / :func:`merge_snapshots` — the paper's
  post-processing: "iterative closest point (ICP) heuristics to merge
  Tango 3D depth maps ... into a single coherent point cloud", undoing
  most of the drift before keypoint-to-3D mappings reach the server.
"""

from repro.wardrive.depth import render_depth_map
from repro.wardrive.environment import (
    ENVIRONMENT_SPECS,
    EnvironmentSpec,
    IndoorEnvironment,
    random_sift_descriptor,
)
from repro.wardrive.icp import IcpResult, icp_align, icp_point_to_plane, merge_snapshots
from repro.wardrive.session import (
    WardriveResult,
    WardriveSession,
    calibration_sweep,
    lawnmower_path,
)
from repro.wardrive.tango import DriftModel, Snapshot, TangoRig

__all__ = [
    "ENVIRONMENT_SPECS",
    "DriftModel",
    "EnvironmentSpec",
    "IcpResult",
    "IndoorEnvironment",
    "Snapshot",
    "TangoRig",
    "WardriveResult",
    "WardriveSession",
    "calibration_sweep",
    "icp_align",
    "icp_point_to_plane",
    "lawnmower_path",
    "merge_snapshots",
    "random_sift_descriptor",
    "render_depth_map",
]
