"""Iterative closest point (ICP) drift correction.

"We apply iterative closest point (ICP) heuristics to merge Tango 3D
depth maps (from separate snapshots) into a single coherent point cloud
for the entire indoor space" — undoing dead-reckoning drift so that
truly-unique keypoints are not double-counted as repeats, and improving
the 3D position estimates themselves.

Design notes (why each piece exists):

* **Point-to-plane** error metric.  Indoor depth maps are dominated by
  large planar surfaces; point-to-point ICP leaves in-plane sliding
  unconstrained and diverges on wall-only views.  Point-to-plane with
  the small-angle linearization (Chen & Medioni) is the standard remedy
  and converges in a handful of iterations.
* **Anchor map**.  Tango poses are "relative to the start position", so
  drift is smallest at session start.  The wardriving path begins with
  an in-place 360-degree sweep; those early depth maps are fused into a
  trusted *anchor* model of the venue shell that later snapshots align
  against.  Aligning against an incrementally grown map instead lets
  early alignment noise contaminate the reference and the correction
  random-walks — measurably worse (see ``tests/test_icp.py``).
* **Plausibility rejection**.  Dead-reckoning drift is bounded; a
  correction with a large rotation or translation means ICP fell into a
  wrong basin (e.g. box symmetry), so the snapshot keeps its reported
  frame — the same conservative fallback a production system would use.

:func:`icp_align` (classic point-to-point, Kabsch/SVD) is retained for
generic rigid registration and the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.spatial import cKDTree

__all__ = [
    "IcpResult",
    "icp_align",
    "icp_point_to_plane",
    "merge_snapshots",
]


@dataclass(frozen=True)
class IcpResult:
    """A rigid correction: ``aligned = points @ rotation.T + translation``."""

    rotation: np.ndarray  # (3, 3)
    translation: np.ndarray  # (3,)
    rms_error: float
    iterations: int
    converged: bool

    def apply(self, points: np.ndarray) -> np.ndarray:
        return np.asarray(points, dtype=np.float64) @ self.rotation.T + self.translation

    @property
    def rotation_angle(self) -> float:
        """Magnitude of the rotation component, radians."""
        return float(
            np.arccos(np.clip((np.trace(self.rotation) - 1.0) / 2.0, -1.0, 1.0))
        )

    @classmethod
    def identity(cls) -> "IcpResult":
        return cls(
            rotation=np.eye(3),
            translation=np.zeros(3),
            rms_error=np.inf,
            iterations=0,
            converged=False,
        )


def _kabsch(source: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Optimal rigid transform mapping source onto target (least squares)."""
    source_center = source.mean(axis=0)
    target_center = target.mean(axis=0)
    covariance = (source - source_center).T @ (target - target_center)
    u, _, vt = np.linalg.svd(covariance)
    sign = np.sign(np.linalg.det(vt.T @ u.T))
    correction = np.diag([1.0, 1.0, sign])
    rotation = vt.T @ correction @ u.T
    translation = target_center - rotation @ source_center
    return rotation, translation


def icp_align(
    source: np.ndarray,
    target: np.ndarray,
    max_iterations: int = 30,
    tolerance: float = 1e-5,
    max_pair_distance: float = 1.5,
) -> IcpResult:
    """Point-to-point ICP aligning ``source`` onto ``target``.

    Pairs farther than ``max_pair_distance`` are treated as outliers
    (non-overlapping regions) and excluded each iteration.
    """
    source = np.asarray(source, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    if source.ndim != 2 or source.shape[1] != 3:
        raise ValueError(f"source must be (n, 3), got {source.shape}")
    if target.ndim != 2 or target.shape[1] != 3:
        raise ValueError(f"target must be (n, 3), got {target.shape}")
    if source.shape[0] < 3 or target.shape[0] < 3:
        return IcpResult.identity()

    tree = cKDTree(target)
    rotation = np.eye(3)
    translation = np.zeros(3)
    moved = source.copy()
    previous_error = np.inf
    iterations = 0
    converged = False
    for iterations in range(1, max_iterations + 1):
        distances, indices = tree.query(moved, k=1)
        inliers = distances < max_pair_distance
        if inliers.sum() < 3:
            return IcpResult.identity()
        step_rotation, step_translation = _kabsch(
            moved[inliers], target[indices[inliers]]
        )
        moved = moved @ step_rotation.T + step_translation
        rotation = step_rotation @ rotation
        translation = step_rotation @ translation + step_translation
        error = float(np.sqrt(np.mean(distances[inliers] ** 2)))
        if abs(previous_error - error) < tolerance:
            converged = True
            break
        previous_error = error

    distances, _ = tree.query(moved, k=1)
    inliers = distances < max_pair_distance
    rms = float(np.sqrt(np.mean(distances[inliers] ** 2))) if inliers.any() else np.inf
    return IcpResult(
        rotation=rotation,
        translation=translation,
        rms_error=rms,
        iterations=iterations,
        converged=converged,
    )


def _rotation_from_axis_angle(omega: np.ndarray) -> np.ndarray:
    """Rodrigues rotation from an axis-angle vector."""
    angle = float(np.linalg.norm(omega))
    if angle < 1e-12:
        return np.eye(3)
    axis = omega / angle
    skew = np.array(
        [
            [0.0, -axis[2], axis[1]],
            [axis[2], 0.0, -axis[0]],
            [-axis[1], axis[0], 0.0],
        ]
    )
    return np.eye(3) + np.sin(angle) * skew + (1.0 - np.cos(angle)) * (skew @ skew)


def icp_point_to_plane(
    source: np.ndarray,
    target_points: np.ndarray,
    target_normals: np.ndarray,
    target_tree: cKDTree | None = None,
    max_iterations: int = 20,
    max_pair_distance: float = 1.5,
    tolerance: float = 1e-7,
    damping: float = 0.05,
) -> IcpResult:
    """Point-to-plane ICP (Chen–Medioni small-angle linearization).

    Minimizes ``sum(((R p + t - q) . n)^2)`` over rigid ``(R, t)``; each
    iteration solves the linearized 6-DoF least squares in closed form.
    ``target_normals`` must align row-wise with ``target_points``.

    ``damping`` adds Tikhonov regularization to the per-iteration solve.
    Indoor geometry is plane-dominated, so some rigid directions (e.g.
    translation along a corridor) can be unobservable; damping keeps
    those components at zero correction instead of letting them
    random-walk on association noise.
    """
    source = np.asarray(source, dtype=np.float64)
    target_points = np.asarray(target_points, dtype=np.float64)
    target_normals = np.asarray(target_normals, dtype=np.float64)
    if target_points.shape != target_normals.shape:
        raise ValueError("target points and normals must align")
    if source.shape[0] < 6 or target_points.shape[0] < 6:
        return IcpResult.identity()

    tree = target_tree if target_tree is not None else cKDTree(target_points)
    rotation = np.eye(3)
    translation = np.zeros(3)
    moved = source.copy()
    iterations = 0
    converged = False
    last_rms = np.inf
    for iterations in range(1, max_iterations + 1):
        distances, indices = tree.query(moved, k=1)
        inliers = distances < max_pair_distance
        if inliers.sum() < 6:
            return IcpResult.identity()
        points = moved[inliers]
        matched = target_points[indices[inliers]]
        normals = target_normals[indices[inliers]]
        residuals = ((matched - points) * normals).sum(axis=1)
        design = np.hstack([np.cross(points, normals), normals])
        normal_matrix = design.T @ design
        normal_matrix += damping * np.trace(normal_matrix) / 6.0 * np.eye(6)
        solution = np.linalg.solve(normal_matrix, design.T @ residuals)
        omega, shift = solution[:3], solution[3:]
        step_rotation = _rotation_from_axis_angle(omega)
        moved = moved @ step_rotation.T + shift
        rotation = step_rotation @ rotation
        translation = step_rotation @ translation + shift
        last_rms = float(np.sqrt(np.mean(residuals**2)))
        if np.linalg.norm(omega) < tolerance and np.linalg.norm(shift) < tolerance:
            converged = True
            break
    return IcpResult(
        rotation=rotation,
        translation=translation,
        rms_error=last_rms,
        iterations=iterations,
        converged=converged,
    )


def fit_shell(
    points: np.ndarray, normals: np.ndarray, min_support: int = 20
) -> tuple[np.ndarray, np.ndarray]:
    """Fit the venue's axis-aligned shell (6 planes) from a depth cloud.

    For each axis, points whose normals align with that axis are split
    at the cloud median and the two plane offsets are their medians —
    robust to drift smear because plane points vastly outnumber tails.
    Returns the fitted ``(low, high)`` corners.
    """
    points = np.asarray(points, dtype=np.float64)
    normals = np.asarray(normals, dtype=np.float64)
    low = np.zeros(3)
    high = np.zeros(3)
    mid = np.median(points, axis=0)
    for axis in range(3):
        aligned = np.abs(normals[:, axis]) > 0.85
        coords = points[aligned, axis]
        if coords.size < 2 * min_support:
            coords = points[:, axis]
        low_side = coords[coords < mid[axis]]
        high_side = coords[coords >= mid[axis]]
        low[axis] = (
            float(np.median(low_side)) if low_side.size >= min_support
            else float(np.min(coords))
        )
        high[axis] = (
            float(np.median(high_side)) if high_side.size >= min_support
            else float(np.max(coords))
        )
    return low, high


def shell_grid(
    low: np.ndarray, high: np.ndarray, spacing: float = 0.4
) -> tuple[np.ndarray, np.ndarray]:
    """Sample an axis-aligned box shell as (points, inward normals)."""
    low = np.asarray(low, dtype=np.float64)
    high = np.asarray(high, dtype=np.float64)
    if np.any(high <= low):
        raise ValueError(f"degenerate shell {low} .. {high}")
    xs = np.arange(low[0], high[0], spacing)
    ys = np.arange(low[1], high[1], spacing)
    zs = np.arange(low[2], high[2], spacing)
    points: list[np.ndarray] = []
    normals: list[np.ndarray] = []

    grid_x, grid_z = np.meshgrid(xs, zs)
    for y_value, normal in ((low[1], (0, 1, 0)), (high[1], (0, -1, 0))):
        points.append(
            np.column_stack(
                [grid_x.ravel(), np.full(grid_x.size, y_value), grid_z.ravel()]
            )
        )
        normals.append(np.tile(normal, (grid_x.size, 1)))
    grid_y, grid_z = np.meshgrid(ys, zs)
    for x_value, normal in ((low[0], (1, 0, 0)), (high[0], (-1, 0, 0))):
        points.append(
            np.column_stack(
                [np.full(grid_y.size, x_value), grid_y.ravel(), grid_z.ravel()]
            )
        )
        normals.append(np.tile(normal, (grid_y.size, 1)))
    grid_x, grid_y = np.meshgrid(xs, ys)
    for z_value, normal in ((low[2], (0, 0, 1)), (high[2], (0, 0, -1))):
        points.append(
            np.column_stack(
                [grid_x.ravel(), grid_y.ravel(), np.full(grid_x.size, z_value)]
            )
        )
        normals.append(np.tile(normal, (grid_x.size, 1)))
    return np.vstack(points), np.vstack(normals).astype(np.float64)


def merge_snapshots(
    snapshots: list,
    max_pair_distance: float = 1.5,
    refit_iterations: int = 2,
    max_correction_rotation: float = np.deg2rad(12.0),
    max_correction_translation: float = 6.0,
) -> list[np.ndarray]:
    """Drift-correct every snapshot's estimated keypoint positions.

    Implements the paper's "merge Tango 3D depth maps ... into a single
    coherent point cloud" as model-based registration:

    1. Fit the venue shell (:func:`fit_shell`) from all snapshots' dense
       depth clouds — robust to drift smear.
    2. Point-to-plane align each snapshot's cloud against the shell;
       apply the correction to that snapshot's keypoint estimates.
    3. Re-fit the shell from corrected clouds and repeat (the cloud
       "converges" over ``refit_iterations`` rounds).

    Implausibly large corrections (wrong ICP basin, e.g. from box
    symmetry) are rejected; those snapshots keep their reported frame.
    """
    if not snapshots:
        return []
    clouds = [s.dense_points for s in snapshots]
    normal_sets = [s.dense_normals for s in snapshots]
    usable = [c.shape[0] >= 6 for c in clouds]
    if not any(usable):
        return [s.world_estimates.copy() for s in snapshots]

    corrections: list[tuple[np.ndarray, np.ndarray]] = [
        (np.eye(3), np.zeros(3)) for _ in snapshots
    ]
    for _ in range(max(1, refit_iterations)):
        moved_points = np.vstack(
            [
                cloud[::2] @ rotation.T + translation
                for cloud, (rotation, translation), ok in zip(
                    clouds, corrections, usable
                )
                if ok
            ]
        )
        moved_normals = np.vstack(
            [
                normals[::2] @ rotation.T
                for normals, (rotation, _), ok in zip(
                    normal_sets, corrections, usable
                )
                if ok
            ]
        )
        low, high = fit_shell(moved_points, moved_normals)
        if np.any(high - low < 0.5):
            break
        shell_points, shell_normals = shell_grid(low, high)
        tree = cKDTree(shell_points)
        new_corrections: list[tuple[np.ndarray, np.ndarray]] = []
        for cloud, ok in zip(clouds, usable):
            if not ok:
                new_corrections.append((np.eye(3), np.zeros(3)))
                continue
            result = icp_point_to_plane(
                cloud,
                shell_points,
                shell_normals,
                target_tree=tree,
                max_pair_distance=max_pair_distance,
            )
            plausible = (
                np.isfinite(result.rms_error)
                and result.rotation_angle <= max_correction_rotation
                and np.linalg.norm(result.translation) <= max_correction_translation
            )
            if plausible:
                new_corrections.append((result.rotation, result.translation))
            else:
                new_corrections.append((np.eye(3), np.zeros(3)))
        corrections = new_corrections

    return [
        snapshot.world_estimates @ rotation.T + translation
        for snapshot, (rotation, translation) in zip(snapshots, corrections)
    ]
