"""The simulated Tango rig: drifting pose tracker + snapshot capture.

Each snapshot carries what the real rig provides — the reported (drifted)
6-DoF pose, the observed landmark pixels and descriptors from the RGB
path, and per-keypoint IR depth — plus, for evaluation only, the ground
truth the simulator knows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.camera import CameraIntrinsics, PinholeCamera
from repro.geometry.pose import Pose
from repro.util.rng import rng_for
from repro.wardrive.environment import IndoorEnvironment

__all__ = ["DriftModel", "Snapshot", "TangoRig"]


@dataclass(frozen=True)
class DriftModel:
    """Dead-reckoning error accumulation per captured snapshot.

    Position drift is a random walk (meters per step); yaw drift a random
    walk in radians.  ``scale`` multiplies both, giving the ICP ablation
    a single knob from "perfect VSLAM" (0) to "heavy drift".
    """

    position_sigma: float = 0.035
    yaw_sigma: float = 0.004
    scale: float = 1.0

    def step(
        self, state: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Advance the drift state ``[dx, dy, dz, dyaw]`` one snapshot."""
        step = np.array(
            [
                rng.normal(0.0, self.position_sigma),
                rng.normal(0.0, self.position_sigma),
                rng.normal(0.0, self.position_sigma * 0.3),  # z drifts less
                rng.normal(0.0, self.yaw_sigma),
            ]
        )
        return state + self.scale * step


@dataclass
class Snapshot:
    """One wardriving capture.

    ``world_estimates`` is what the pipeline actually uses downstream:
    pixel+depth back-projected through the *reported* pose — i.e., 3D
    positions contaminated by drift, which ICP later corrects.
    """

    index: int
    reported_pose: Pose
    true_pose: Pose
    landmark_ids: np.ndarray  # (n,) ground-truth landmark indices (eval only)
    pixels: np.ndarray  # (n, 2)
    depths: np.ndarray  # (n,) measured optical-axis depth
    descriptors: np.ndarray  # (n, 128)
    world_estimates: np.ndarray = field(default_factory=lambda: np.empty((0, 3)))
    # Dense IR depth cloud + surface normals, back-projected through the
    # reported pose (what ICP drift correction consumes).
    dense_points: np.ndarray = field(default_factory=lambda: np.empty((0, 3)))
    dense_normals: np.ndarray = field(default_factory=lambda: np.empty((0, 3)))

    @property
    def num_observations(self) -> int:
        return int(self.pixels.shape[0])


class TangoRig:
    """Captures snapshots of an environment along a walking path."""

    def __init__(
        self,
        environment: IndoorEnvironment,
        seed: int = 0,
        intrinsics: CameraIntrinsics | None = None,
        depth_intrinsics: CameraIntrinsics | None = None,
        drift: DriftModel | None = None,
        max_range: float = 12.0,
        depth_sensor_range: float = 25.0,
        depth_resolution: tuple[int, int] = (24, 32),
        pixel_noise_sigma: float = 0.7,
        depth_noise_sigma: float = 0.015,
        descriptor_noise_sigma: float = 3.0,
        detection_probability: float = 0.9,
    ) -> None:
        self.environment = environment
        self.intrinsics = intrinsics or CameraIntrinsics()
        # The IR depth sensor is wider than the RGB camera (as on Tango),
        # which keeps floor + ceiling + walls in view for ICP anchoring.
        self.depth_intrinsics = depth_intrinsics or CameraIntrinsics(
            width=640, height=480, fov_h=np.deg2rad(90.0), fov_v=np.deg2rad(70.0)
        )
        self.drift = drift or DriftModel()
        self.max_range = float(max_range)
        self.depth_sensor_range = float(depth_sensor_range)
        self.depth_resolution = depth_resolution
        self.pixel_noise_sigma = float(pixel_noise_sigma)
        self.depth_noise_sigma = float(depth_noise_sigma)
        self.descriptor_noise_sigma = float(descriptor_noise_sigma)
        self.detection_probability = float(detection_probability)
        self._rng = rng_for(seed, f"tango/{environment.spec.name}")
        self._drift_state = np.zeros(4)
        self._capture_count = 0

    def _reported_pose(self, true_pose: Pose) -> Pose:
        dx, dy, dz, dyaw = self._drift_state
        return Pose(
            x=true_pose.x + dx,
            y=true_pose.y + dy,
            z=true_pose.z + dz,
            yaw=true_pose.yaw + dyaw,
            pitch=true_pose.pitch,
            roll=true_pose.roll,
        )

    def observe(self, true_pose: Pose) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Landmarks visible from ``true_pose``: (ids, pixels, true depths)."""
        camera = PinholeCamera(self.intrinsics, true_pose)
        nearby = self.environment.landmarks_near(true_pose.position, self.max_range)
        if nearby.size == 0:
            empty2 = np.empty((0, 2))
            return np.empty(0, dtype=np.int64), empty2, np.empty(0)
        points = self.environment.positions[nearby]
        pixels, visible = camera.project(points)
        detected = visible & (
            self._rng.random(nearby.size) < self.detection_probability
        )
        ids = nearby[detected]
        depths = camera.depth_of(points[detected])
        return ids, pixels[detected], depths

    def capture(self, true_pose: Pose) -> Snapshot:
        """Take one drift-contaminated snapshot at ``true_pose``."""
        self._drift_state = self.drift.step(self._drift_state, self._rng)
        reported = self._reported_pose(true_pose)

        ids, pixels, true_depths = self.observe(true_pose)
        n = ids.size
        pixels = pixels + self._rng.normal(0, self.pixel_noise_sigma, size=(n, 2))
        depths = true_depths * self._rng.normal(
            1.0, self.depth_noise_sigma, size=n
        )
        descriptors = self.environment.descriptors[ids] + self._rng.normal(
            0, self.descriptor_noise_sigma, size=(n, 128)
        )
        descriptors = np.clip(descriptors, 0, 255).astype(np.float32)

        # What the pipeline uses downstream: pixel+depth back-projected
        # through the *reported* pose, i.e. drift-contaminated 3D.
        reported_camera = PinholeCamera(self.intrinsics, reported)
        world_estimates = reported_camera.back_project(pixels, depths)
        dense_points, dense_normals = self._dense_depth_cloud(true_pose, reported)
        snapshot = Snapshot(
            index=self._capture_count,
            reported_pose=reported,
            true_pose=true_pose,
            landmark_ids=ids,
            pixels=pixels,
            depths=depths,
            descriptors=descriptors,
            world_estimates=world_estimates,
            dense_points=dense_points,
            dense_normals=dense_normals,
        )
        self._capture_count += 1
        return snapshot

    def _dense_depth_cloud(
        self, true_pose: Pose, reported_pose: Pose
    ) -> tuple[np.ndarray, np.ndarray]:
        """Render the IR depth map and lift it through the reported pose.

        The sensor sees the true world (depth rendered from the true
        pose); the rig trusts its tracker, so the cloud is back-projected
        through the drifted pose.  Normals come from the depth image's
        grid tangents; samples at depth discontinuities (where tangents
        jump) are dropped because their normals are meaningless.
        """
        from repro.wardrive.depth import render_depth_map

        rows, cols = self.depth_resolution
        depth_map = render_depth_map(
            true_pose,
            self.depth_intrinsics,
            self.environment.bounds,
            resolution=self.depth_resolution,
            noise_sigma=self.depth_noise_sigma * 0.7,
            rng=self._rng,
        )
        px = (np.arange(cols) + 0.5) / cols * self.depth_intrinsics.width
        py = (np.arange(rows) + 0.5) / rows * self.depth_intrinsics.height
        grid_x, grid_y = np.meshgrid(px, py)
        pixels = np.column_stack([grid_x.ravel(), grid_y.ravel()])
        depths = depth_map.ravel()
        safe_depths = np.where(np.isfinite(depths), depths, 1.0)
        camera = PinholeCamera(self.depth_intrinsics, reported_pose)
        points = camera.back_project(pixels, safe_depths)

        grid = points.reshape(rows, cols, 3)
        tangent_u = np.gradient(grid, axis=1).reshape(-1, 3)
        tangent_v = np.gradient(grid, axis=0).reshape(-1, 3)
        normals = np.cross(tangent_u, tangent_v)
        lengths = np.linalg.norm(normals, axis=1, keepdims=True)
        smooth = (np.linalg.norm(tangent_u, axis=1) < 2.0) & (
            np.linalg.norm(tangent_v, axis=1) < 2.0
        )
        valid = (
            np.isfinite(depths)
            & (depths < self.depth_sensor_range)
            & (lengths.ravel() > 1e-9)
            & smooth
        )
        normals = normals / np.maximum(lengths, 1e-12)
        return points[valid], normals[valid]
