"""Wardriving session orchestration.

"To wardrive a venue, a user needs to walk throughout the indoor space"
— the session walks a lawnmower path through the venue, captures
snapshots, runs ICP drift correction, and emits the keypoint-to-3D
mapping the cloud service ingests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.pose import Pose
from repro.wardrive.environment import IndoorEnvironment
from repro.wardrive.icp import merge_snapshots
from repro.wardrive.tango import DriftModel, Snapshot, TangoRig

__all__ = ["WardriveResult", "WardriveSession", "lawnmower_path"]


def calibration_sweep(
    environment: IndoorEnvironment,
    num_views: int = 10,
    eye_height: float = 1.5,
) -> list[Pose]:
    """An in-place 360-degree sweep near the venue center.

    Tango poses are relative to the start position, so drift is smallest
    at the beginning of a session; these first captures build the anchor
    depth model that ICP corrections reference (see
    :func:`repro.wardrive.merge_snapshots`).
    """
    spec = environment.spec
    center_x, center_y = spec.width / 2.0, spec.depth / 2.0
    return [
        Pose(
            x=center_x,
            y=center_y,
            z=eye_height,
            yaw=2.0 * np.pi * view / num_views,
        )
        for view in range(num_views)
    ]


def lawnmower_path(
    environment: IndoorEnvironment,
    spacing: float = 5.0,
    step: float = 1.5,
    eye_height: float = 1.5,
) -> list[Pose]:
    """Back-and-forth walking poses covering the venue's floor plan.

    The path starts with :func:`calibration_sweep`, then walks rows.  At
    each waypoint the walker faces along the direction of travel —
    matching how a human wardrives a corridor.  Alternating rows add a
    half-turn of yaw so both wall sides get observed.
    """
    spec = environment.spec
    margin = 2.0
    poses: list[Pose] = calibration_sweep(environment, eye_height=eye_height)
    ys = np.arange(margin, spec.depth - margin + 1e-9, spacing)
    for row, y in enumerate(ys):
        xs = np.arange(margin, spec.width - margin + 1e-9, step)
        if row % 2 == 1:
            xs = xs[::-1]
        heading = 0.0 if row % 2 == 0 else np.pi
        for x in xs:
            poses.append(Pose(x=float(x), y=float(y), z=eye_height, yaw=heading))
            # A quarter look to each side every few steps widens coverage.
            if int(x / step) % 4 == 0:
                poses.append(
                    Pose(x=float(x), y=float(y), z=eye_height, yaw=heading + np.pi / 2)
                )
                poses.append(
                    Pose(x=float(x), y=float(y), z=eye_height, yaw=heading - np.pi / 2)
                )
    return poses


@dataclass
class WardriveResult:
    """The keypoint-to-3D mapping a session produces.

    ``positions`` are ICP-corrected (or raw, when correction is off)
    world estimates; ``true_positions`` the simulator's ground truth for
    error accounting; ``landmark_ids`` ground-truth identity (evaluation
    only — the real system never sees these).
    """

    descriptors: np.ndarray  # (n, 128)
    positions: np.ndarray  # (n, 3)
    true_positions: np.ndarray  # (n, 3)
    landmark_ids: np.ndarray  # (n,)
    snapshots: list[Snapshot]

    @property
    def num_mappings(self) -> int:
        return int(self.descriptors.shape[0])

    def position_errors(self) -> np.ndarray:
        """Per-mapping 3D error of the stored positions (meters)."""
        return np.linalg.norm(self.positions - self.true_positions, axis=1)


class WardriveSession:
    """Walk, capture, correct, and emit the mapping table."""

    def __init__(
        self,
        environment: IndoorEnvironment,
        seed: int = 0,
        drift: DriftModel | None = None,
        path: list[Pose] | None = None,
    ) -> None:
        self.environment = environment
        self.rig = TangoRig(environment, seed=seed, drift=drift)
        self.path = path if path is not None else lawnmower_path(environment)

    def run(self, use_icp: bool = True) -> WardriveResult:
        """Execute the walk and build the keypoint-to-3D mapping."""
        snapshots = [self.rig.capture(pose) for pose in self.path]
        snapshots = [s for s in snapshots if s.num_observations > 0]
        if use_icp:
            corrected = merge_snapshots(snapshots)
        else:
            corrected = [s.world_estimates for s in snapshots]

        descriptors = np.vstack([s.descriptors for s in snapshots])
        positions = np.vstack(corrected)
        landmark_ids = np.concatenate([s.landmark_ids for s in snapshots])
        true_positions = self.environment.positions[landmark_ids]
        return WardriveResult(
            descriptors=descriptors.astype(np.float32),
            positions=positions,
            true_positions=true_positions,
            landmark_ids=landmark_ids,
            snapshots=snapshots,
        )
