"""Feature-level indoor environments.

An environment is a box-shaped venue whose walls (and mid-room shelving,
for the grocery) carry *landmarks*: 3D points with SIFT-style integer
descriptors.  Landmarks come in two entropy classes mirroring the
paper's observation:

* **unique** — one-of-a-kind content (art, signage, distinctive
  clutter); each landmark gets an independent random descriptor.
* **repeated** — building-wide motifs (door knobs, tiles, chairs): a
  small motif pool whose members recur at many positions with small
  descriptor perturbations, "unique in a room, but repeated in every
  room of a building".

The three paper venues are parameterized by :data:`ENVIRONMENT_SPECS`:
office 50x20 m, cafeteria 50x15 m, grocery 80x50 m.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import rng_for

__all__ = [
    "ENVIRONMENT_SPECS",
    "EnvironmentSpec",
    "IndoorEnvironment",
    "random_sift_descriptor",
]


def random_sift_descriptor(rng: np.random.Generator) -> np.ndarray:
    """Sample a statistically SIFT-like 128-D integer descriptor.

    Real SIFT descriptors are sparse and non-negative with a hard cap
    from the 0.2 illumination clamp.  We sample exponential magnitudes,
    zero most entries, then apply the exact normalize/clip/renormalize/
    integerize pipeline from :class:`repro.features.SiftExtractor`.
    """
    raw = rng.exponential(1.0, size=128)
    mask = rng.random(128) < 0.55  # ~45% of bins active, as in real SIFT
    raw[mask] = 0.0
    norm = np.linalg.norm(raw)
    if norm < 1e-9:
        raw[rng.integers(0, 128)] = 1.0
        norm = 1.0
    clipped = np.minimum(raw / norm, 0.2)
    clipped /= max(np.linalg.norm(clipped), 1e-9)
    return np.clip(np.rint(clipped * 512.0), 0, 255).astype(np.float32)


@dataclass(frozen=True)
class EnvironmentSpec:
    """Venue geometry and landmark budget."""

    name: str
    width: float  # extent along x, meters
    depth: float  # extent along y, meters
    height: float = 3.0
    num_unique: int = 1200
    num_repeated_motifs: int = 24
    repeats_per_motif: int = 60
    has_aisles: bool = False  # grocery shelving adds interior walls


ENVIRONMENT_SPECS: dict[str, EnvironmentSpec] = {
    "office": EnvironmentSpec(name="office", width=50.0, depth=20.0),
    "cafeteria": EnvironmentSpec(name="cafeteria", width=50.0, depth=15.0),
    "grocery": EnvironmentSpec(
        name="grocery",
        width=80.0,
        depth=50.0,
        num_unique=2000,
        num_repeated_motifs=30,
        repeats_per_motif=90,
        has_aisles=True,
    ),
}


class IndoorEnvironment:
    """Ground-truth world: landmark positions, descriptors, entropy class."""

    def __init__(
        self,
        spec: EnvironmentSpec,
        positions: np.ndarray,
        descriptors: np.ndarray,
        is_unique: np.ndarray,
    ) -> None:
        if positions.shape[0] != descriptors.shape[0] != is_unique.shape[0]:
            raise ValueError("landmark arrays must align")
        self.spec = spec
        self.positions = positions.astype(np.float64)
        self.descriptors = descriptors.astype(np.float32)
        self.is_unique = is_unique.astype(bool)

    @classmethod
    def build(cls, kind: str, seed: int = 0) -> "IndoorEnvironment":
        """Generate the named venue deterministically from ``seed``."""
        if kind not in ENVIRONMENT_SPECS:
            raise ValueError(
                f"unknown environment {kind!r}; choose from {sorted(ENVIRONMENT_SPECS)}"
            )
        spec = ENVIRONMENT_SPECS[kind]
        rng = rng_for(seed, f"environment/{kind}")

        surfaces = cls._wall_surfaces(spec)
        positions: list[np.ndarray] = []
        descriptors: list[np.ndarray] = []
        is_unique: list[bool] = []

        # Unique landmarks: independent descriptors, scattered on surfaces.
        for _ in range(spec.num_unique):
            positions.append(cls._sample_on_surface(surfaces, rng, spec.height))
            descriptors.append(random_sift_descriptor(rng))
            is_unique.append(True)

        # Repeated motifs: same base descriptor, many placements, small
        # per-placement perturbation (viewing/lighting variation).
        for _ in range(spec.num_repeated_motifs):
            base = random_sift_descriptor(rng)
            for _ in range(spec.repeats_per_motif):
                positions.append(cls._sample_on_surface(surfaces, rng, spec.height))
                jitter = rng.normal(0.0, 4.0, size=128)
                descriptors.append(
                    np.clip(base + jitter, 0, 255).astype(np.float32)
                )
                is_unique.append(False)

        return cls(
            spec=spec,
            positions=np.array(positions),
            descriptors=np.array(descriptors),
            is_unique=np.array(is_unique),
        )

    @staticmethod
    def _wall_surfaces(spec: EnvironmentSpec) -> list[tuple[np.ndarray, np.ndarray, float]]:
        """Surfaces as (origin, along-direction, length) segments in the
        horizontal plane; landmarks get a random height on the segment's
        vertical plane."""
        width, depth = spec.width, spec.depth
        surfaces = [
            (np.array([0.0, 0.0]), np.array([1.0, 0.0]), width),  # south wall
            (np.array([0.0, depth]), np.array([1.0, 0.0]), width),  # north wall
            (np.array([0.0, 0.0]), np.array([0.0, 1.0]), depth),  # west wall
            (np.array([width, 0.0]), np.array([0.0, 1.0]), depth),  # east wall
        ]
        if spec.has_aisles:
            # Interior shelving rows every ~10 m (the grocery's aisles).
            num_aisles = int(depth // 10)
            for aisle in range(1, num_aisles):
                y = aisle * depth / num_aisles
                surfaces.append(
                    (np.array([width * 0.1, y]), np.array([1.0, 0.0]), width * 0.8)
                )
        return surfaces

    @staticmethod
    def _sample_on_surface(
        surfaces: list[tuple[np.ndarray, np.ndarray, float]],
        rng: np.random.Generator,
        height: float,
    ) -> np.ndarray:
        index = int(rng.integers(0, len(surfaces)))
        origin, direction, length = surfaces[index]
        along = rng.uniform(0.0, length)
        xy = origin + direction * along
        z = rng.uniform(0.3, height - 0.3)
        return np.array([xy[0], xy[1], z])

    @property
    def num_landmarks(self) -> int:
        return int(self.positions.shape[0])

    @property
    def bounds(self) -> tuple[np.ndarray, np.ndarray]:
        """Axis-aligned (low, high) corners of the venue."""
        low = np.array([0.0, 0.0, 0.0])
        high = np.array([self.spec.width, self.spec.depth, self.spec.height])
        return low, high

    def landmarks_near(self, position: np.ndarray, radius: float) -> np.ndarray:
        """Indices of landmarks within ``radius`` meters of ``position``."""
        deltas = self.positions - np.asarray(position, dtype=np.float64)
        return np.flatnonzero((deltas**2).sum(axis=1) <= radius**2)
