"""IR depth-map rendering.

Tango couples every snapshot with "a lower resolution depth map of the
corresponding view (from an embedded IR-based depth sensor)".  We render
that map analytically: each pixel's ray is intersected with the venue's
bounding walls, floor, and ceiling, and the optical-axis depth of the
first hit is reported with sensor noise.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.camera import CameraIntrinsics
from repro.geometry.pose import Pose

__all__ = ["render_depth_map"]


def render_depth_map(
    pose: Pose,
    intrinsics: CameraIntrinsics,
    bounds: tuple[np.ndarray, np.ndarray],
    resolution: tuple[int, int] = (48, 64),
    noise_sigma: float = 0.02,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Render an ``(rows, cols)`` optical-axis depth map of the empty room.

    ``bounds`` are the venue's axis-aligned (low, high) corners.  Noise
    is multiplicative (IR depth error grows with range).  Rays that
    escape the box (numerically) report NaN.
    """
    rows, cols = resolution
    low, high = bounds
    # Pixel grid at the low resolution, mapped onto the full FoV.
    px = (np.arange(cols) + 0.5) / cols * intrinsics.width
    py = (np.arange(rows) + 0.5) / rows * intrinsics.height
    grid_x, grid_y = np.meshgrid(px, py)

    cx, cy = intrinsics.center
    # Camera-frame ray directions (+X forward; see PinholeCamera).
    dir_y = -(grid_x - cx) / intrinsics.focal_x
    dir_z = -(grid_y - cy) / intrinsics.focal_y
    directions = np.stack(
        [np.ones_like(dir_y), dir_y, dir_z], axis=-1
    ).reshape(-1, 3)
    world_dirs = directions @ pose.rotation.T
    origin = pose.position

    # Slab intersection with the box: smallest positive t per axis plane.
    t_exit = np.full(world_dirs.shape[0], np.inf)
    for axis in range(3):
        d = world_dirs[:, axis]
        with np.errstate(divide="ignore", invalid="ignore"):
            t_low = (low[axis] - origin[axis]) / d
            t_high = (high[axis] - origin[axis]) / d
        for t_candidate in (t_low, t_high):
            positive = np.where(t_candidate > 1e-9, t_candidate, np.inf)
            t_exit = np.minimum(t_exit, positive)

    # Optical-axis depth = t * (camera-frame forward component), and the
    # forward component of a unit... directions have forward component 1
    # by construction, so depth along the axis is exactly t_exit.
    depth = t_exit.reshape(rows, cols)
    depth[~np.isfinite(depth)] = np.nan
    if noise_sigma > 0:
        generator = rng if rng is not None else np.random.default_rng(0)
        noise = generator.normal(1.0, noise_sigma, size=depth.shape)
        depth = depth * noise
    return depth
