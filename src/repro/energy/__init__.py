"""Smartphone power model (Fig. 18's Monsoon-meter substitute).

Component plateaus are anchored to the paper's measured values on the
Galaxy S5: display ≈ 1 W, display+camera ≈ 3.5 W, full VisualPrint
(display+camera+compute+upload) ≈ 6.5 W, whole-frame offload ≈ 4.9 W.
The model emits Monsoon-style sampled traces so the Fig. 18 time-series
reproduction uses the same plotting machinery as real measurements.
"""

from repro.energy.power import COMPONENT_WATTS, PowerModel, PowerProfile
from repro.energy.trace import PowerTrace, sample_trace

__all__ = [
    "COMPONENT_WATTS",
    "PowerModel",
    "PowerProfile",
    "PowerTrace",
    "sample_trace",
]
