"""Component power model.

Five measurement configurations appear in Fig. 18: display only,
display+camera, VisualPrint computation only, VisualPrint upload only,
and the complete pipeline.  Each is a sum of component plateaus; duty
cycles modulate the compute and radio terms (SIFT runs continuously,
the radio only while payloads are in flight).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.validation import check_in_range, check_positive

__all__ = ["COMPONENT_WATTS", "PowerModel", "PowerProfile"]

# Plateau wattage per component, anchored to the paper's Fig. 18 levels.
COMPONENT_WATTS: dict[str, float] = {
    "baseline": 0.35,  # Android idle, background services
    "display": 0.80,
    "camera": 2.30,
    "compute_sift": 2.40,  # CPU during SIFT extraction
    "compute_oracle": 0.45,  # Bloom lookups + sort (short bursts)
    "radio_active": 1.30,  # WiFi TX plateau
}


@dataclass(frozen=True)
class PowerProfile:
    """Which components a configuration keeps on, with duty cycles."""

    name: str
    display: bool = False
    camera: bool = False
    compute_sift_duty: float = 0.0  # fraction of time the CPU runs SIFT
    compute_oracle_duty: float = 0.0
    radio_duty: float = 0.0  # fraction of time the radio transmits

    def __post_init__(self) -> None:
        check_in_range("compute_sift_duty", self.compute_sift_duty, 0.0, 1.0)
        check_in_range("compute_oracle_duty", self.compute_oracle_duty, 0.0, 1.0)
        check_in_range("radio_duty", self.radio_duty, 0.0, 1.0)


@dataclass
class PowerModel:
    """Average power of a profile, plus the Fig. 18 preset profiles."""

    watts: dict[str, float] = field(default_factory=lambda: dict(COMPONENT_WATTS))

    def average_power(self, profile: PowerProfile) -> float:
        """Mean wattage of a configuration."""
        total = self.watts["baseline"]
        if profile.display:
            total += self.watts["display"]
        if profile.camera:
            total += self.watts["camera"]
        total += profile.compute_sift_duty * self.watts["compute_sift"]
        total += profile.compute_oracle_duty * self.watts["compute_oracle"]
        total += profile.radio_duty * self.watts["radio_active"]
        return total

    def energy_joules(self, profile: PowerProfile, seconds: float) -> float:
        check_positive("seconds", seconds)
        return self.average_power(profile) * seconds

    @staticmethod
    def figure18_profiles(
        visualprint_radio_duty: float = 0.08,
        frame_upload_radio_duty: float = 0.85,
    ) -> dict[str, PowerProfile]:
        """The five measured configurations plus whole-frame offload.

        Radio duty cycles fall out of payload sizes: fingerprints occupy
        the uplink a few percent of the time, whole frames nearly
        always (which is also why frame upload throttles its FPS).
        """
        return {
            "display": PowerProfile(name="display", display=True),
            "camera": PowerProfile(name="camera", display=True, camera=True),
            "visualprint_compute": PowerProfile(
                name="visualprint_compute",
                display=True,
                camera=True,
                compute_sift_duty=0.95,
                compute_oracle_duty=0.6,
            ),
            "visualprint_upload": PowerProfile(
                name="visualprint_upload",
                display=True,
                camera=True,
                radio_duty=visualprint_radio_duty,
            ),
            "visualprint_full": PowerProfile(
                name="visualprint_full",
                display=True,
                camera=True,
                compute_sift_duty=0.95,
                compute_oracle_duty=0.6,
                radio_duty=visualprint_radio_duty,
            ),
            "frame_upload": PowerProfile(
                name="frame_upload",
                display=True,
                camera=True,
                radio_duty=frame_upload_radio_duty,
            ),
        }
