"""Monsoon-style sampled power traces.

The paper measures "at 5,000 Hz" with a Monsoon meter; Fig. 18 plots
per-second average power over a 70 s run.  :func:`sample_trace` emits a
sampled series with measurement noise and burst structure (compute and
radio switch on per frame) so the reproduction plots through the same
averaging path as a real capture.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.energy.power import PowerModel, PowerProfile
from repro.util.validation import check_positive

__all__ = ["PowerTrace", "sample_trace"]


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power series."""

    name: str
    sample_rate_hz: float
    watts: np.ndarray  # (n,)

    @property
    def duration_seconds(self) -> float:
        return self.watts.size / self.sample_rate_hz

    @property
    def average_watts(self) -> float:
        return float(self.watts.mean()) if self.watts.size else 0.0

    def per_second_average(self) -> np.ndarray:
        """Fold samples into 1 Hz averages (the Fig. 18 plot input)."""
        per_second = int(self.sample_rate_hz)
        usable = (self.watts.size // per_second) * per_second
        return self.watts[:usable].reshape(-1, per_second).mean(axis=1)


def sample_trace(
    profile: PowerProfile,
    duration_seconds: float,
    model: PowerModel | None = None,
    sample_rate_hz: float = 5000.0,
    frame_rate_hz: float = 10.0,
    noise_sigma: float = 0.08,
    rng: np.random.Generator | None = None,
) -> PowerTrace:
    """Sample a configuration's power over time.

    Steady components (display, camera) hold their plateau; duty-cycled
    components (compute, radio) switch on at the start of each frame
    period for their duty fraction — producing the sawtooth structure a
    real Monsoon capture shows.
    """
    check_positive("duration_seconds", duration_seconds)
    check_positive("sample_rate_hz", sample_rate_hz)
    model = model or PowerModel()
    generator = rng if rng is not None else np.random.default_rng(0)

    num_samples = int(duration_seconds * sample_rate_hz)
    times = np.arange(num_samples) / sample_rate_hz
    phase = (times * frame_rate_hz) % 1.0  # position within frame period

    watts = np.full(num_samples, model.watts["baseline"])
    if profile.display:
        watts += model.watts["display"]
    if profile.camera:
        watts += model.watts["camera"]
    if profile.compute_sift_duty > 0:
        watts += np.where(
            phase < profile.compute_sift_duty, model.watts["compute_sift"], 0.0
        )
    if profile.compute_oracle_duty > 0:
        # Oracle lookups run right after SIFT within the frame period.
        start = profile.compute_sift_duty
        end = min(1.0, start + profile.compute_oracle_duty)
        watts += np.where(
            (phase >= start) & (phase < end), model.watts["compute_oracle"], 0.0
        )
    if profile.radio_duty > 0:
        watts += np.where(
            phase >= 1.0 - profile.radio_duty, model.watts["radio_active"], 0.0
        )
    watts += generator.normal(0.0, noise_sigma, size=num_samples)
    np.maximum(watts, 0.0, out=watts)
    return PowerTrace(name=profile.name, sample_rate_hz=sample_rate_hz, watts=watts)
