"""Shard workers: where a venue's queries actually execute.

A shard is the unit of placement (see
:class:`repro.serving.ConsistentHashRing`) and of isolation: every venue
assigned to a shard is served by that shard's worker, one query at a
time.  Two worker flavors share one dispatch contract:

* :class:`InlineShardWorker` — executes in the calling process, on the
  event-loop thread.  The default (``workers=1``) and the parity mode:
  queries run in admission order, engines report into the ambient
  :class:`repro.obs.MetricsRegistry`/collector directly, and results are
  bit-identical to calling the engine without the serving layer at all.
* :class:`ProcessShardWorker` — a dedicated single-process
  :class:`concurrent.futures.ProcessPoolExecutor` per shard (forked, the
  same start-method policy as :mod:`repro.parallel`).  Engines are built
  *inside* the worker from picklable builder specs — the
  ``chunk_setup`` idiom of :func:`repro.parallel.parallel_map` — under a
  persistent worker-side registry whose state ships back and merges into
  the parent registry at :meth:`close`, in shard order, so counters and
  histograms survive the process boundary.  Venues registered with a
  live engine (no builder) are pickled across; their bound instruments
  then record into the worker's private copy and are not shipped back
  (the same caveat :mod:`repro.parallel` documents for ``shared``
  components).

Engine contract: an engine is any object with a ``serve(payload)``
method; a :class:`repro.core.VisualPrintServer` is accepted directly
(its ``localize`` is the serve method).
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor
from contextlib import ExitStack
from typing import Any, Callable

from repro.obs import MetricsRegistry, isolated_trace_state, use_registry

__all__ = ["EngineSpec", "InlineShardWorker", "ProcessShardWorker", "resolve_serve"]


def resolve_serve(engine: Any) -> Callable[[Any], Any]:
    """The callable that answers one query for ``engine``.

    ``engine.serve`` when present, else ``engine.localize`` (so a bare
    :class:`repro.core.VisualPrintServer` is a valid venue engine).
    """
    serve = getattr(engine, "serve", None)
    if serve is None:
        serve = getattr(engine, "localize", None)
    if serve is None:
        raise TypeError(
            f"venue engine {type(engine).__name__} has neither .serve nor "
            ".localize"
        )
    return serve


class EngineSpec:
    """Picklable recipe for constructing a venue engine inside a worker.

    ``builder(*args, **kwargs)`` must return the engine; it runs inside
    the worker's registry scope so instruments the engine creates merge
    back to the parent on :meth:`ProcessShardWorker.close`.
    """

    def __init__(self, builder: Callable[..., Any], *args: Any, **kwargs: Any) -> None:
        self.builder = builder
        self.args = args
        self.kwargs = kwargs

    def build(self) -> Any:
        return self.builder(*self.args, **self.kwargs)


class InlineShardWorker:
    """Serve queries synchronously in the calling process."""

    def __init__(self, shard_id: str) -> None:
        self.shard_id = shard_id
        self._engines: dict[str, Any] = {}

    def attach(self, venue: str, engine: Any) -> None:
        if isinstance(engine, EngineSpec):
            engine = engine.build()
        self._engines[venue] = engine

    def detach(self, venue: str) -> None:
        self._engines.pop(venue, None)

    def engine(self, venue: str) -> Any:
        return self._engines[venue]

    def serve(self, venue: str, payload: Any) -> Any:
        return resolve_serve(self._engines[venue])(payload)

    def submit(self, venue: str, payload: Any) -> Future:
        """Future-shaped serve, matching the process worker's interface."""
        future: Future = Future()
        try:
            future.set_result(self.serve(venue, payload))
        except BaseException as error:  # propagate through the future
            future.set_exception(error)
        return future

    def close(self, registry: MetricsRegistry | None = None) -> None:
        self._engines.clear()


# ----------------------------------------------------------------------
# Process workers
# ----------------------------------------------------------------------

# Worker-process state, installed by _init_shard_worker.
_WORKER_ENGINES: dict[str, Any] = {}
_WORKER_REGISTRY: MetricsRegistry | None = None
_WORKER_SCOPE: ExitStack | None = None


def _init_shard_worker(shard_id: str, specs: dict[str, Any]) -> None:
    """Pool initializer: build this shard's engines under a fresh registry."""
    global _WORKER_REGISTRY, _WORKER_SCOPE
    _WORKER_REGISTRY = MetricsRegistry()
    _WORKER_SCOPE = ExitStack()
    # Forked workers inherit the parent's propagation stacks; isolate so
    # worker spans root cleanly and records land in the worker registry.
    _WORKER_SCOPE.enter_context(isolated_trace_state())
    _WORKER_SCOPE.enter_context(use_registry(_WORKER_REGISTRY))
    _WORKER_ENGINES.clear()
    for venue, spec in specs.items():
        _WORKER_ENGINES[venue] = spec.build() if isinstance(spec, EngineSpec) else spec


def _serve_in_worker(venue: str, payload: Any) -> Any:
    return resolve_serve(_WORKER_ENGINES[venue])(payload)


def _worker_registry_state() -> dict[str, Any]:
    assert _WORKER_REGISTRY is not None
    return _WORKER_REGISTRY.state()


class ProcessShardWorker:
    """One dedicated worker process serving this shard's venues."""

    def __init__(self, shard_id: str) -> None:
        self.shard_id = shard_id
        self._specs: dict[str, Any] = {}
        self._pool: ProcessPoolExecutor | None = None

    def attach(self, venue: str, engine: Any) -> None:
        if self._pool is not None:
            raise RuntimeError(
                f"shard {self.shard_id!r} already started; register venues "
                "before the first query in process mode"
            )
        self._specs[venue] = engine

    def detach(self, venue: str) -> None:
        if self._pool is not None:
            raise RuntimeError(
                f"shard {self.shard_id!r} already started; cannot detach "
                f"venue {venue!r} from a live process worker"
            )
        self._specs.pop(venue, None)

    def engine(self, venue: str) -> Any:
        return self._specs[venue]

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            from repro.parallel.pool import _pool_context

            self._pool = ProcessPoolExecutor(
                max_workers=1,
                mp_context=_pool_context(),
                initializer=_init_shard_worker,
                initargs=(self.shard_id, self._specs),
            )
        return self._pool

    def submit(self, venue: str, payload: Any) -> Future:
        return self._ensure_pool().submit(_serve_in_worker, venue, payload)

    def serve(self, venue: str, payload: Any) -> Any:
        return self.submit(venue, payload).result()

    def close(self, registry: MetricsRegistry | None = None) -> None:
        """Shut the worker down, merging its registry into ``registry``."""
        if self._pool is not None:
            if registry is not None:
                try:
                    state = self._pool.submit(_worker_registry_state).result()
                    registry.merge_state(state)
                except Exception:
                    # A crashed worker loses its metrics, never the close.
                    pass
            self._pool.shutdown(wait=True)
            self._pool = None
