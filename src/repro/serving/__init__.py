"""Multi-venue serving layer: registry, shards, and the async front-end.

The paper's offload story implies a server fielding fingerprint queries
from many clients across many venues; :mod:`repro.core` provides the
single-venue engine (:class:`repro.core.VisualPrintServer`), and this
package scales it out:

* :class:`ConsistentHashRing` — stable, minimal-remap placement of
  venues onto shards (``hashring``).
* :class:`VenueRegistry` — venue name → engine, plus per-venue
  snapshot/restore and oracle-download flows through the existing
  integrity layer (``registry``).
* :class:`InlineShardWorker` / :class:`ProcessShardWorker` — execution
  backends per shard (``shards``).
* :class:`ServingFrontend` — the asyncio admission/routing layer with
  bounded-queue backpressure and per-shard saturation gauges
  (``frontend``).
* :func:`simulate_shard_throughput` — discrete-event capacity model
  replaying measured service times over shard queues (``loadsim``).
"""

from repro.serving.frontend import ServingFrontend, ShardSaturatedError
from repro.serving.hashring import ConsistentHashRing
from repro.serving.loadsim import (
    QUERY_ABANDONED,
    QUERY_SERVED,
    QUERY_SHED,
    ShardLoadModel,
    SimulatedLoadResult,
    simulate_queue_network,
    simulate_shard_throughput,
)
from repro.serving.registry import VenueRegistry, load_venue_server
from repro.serving.shards import (
    EngineSpec,
    InlineShardWorker,
    ProcessShardWorker,
    resolve_serve,
)

__all__ = [
    "ConsistentHashRing",
    "EngineSpec",
    "InlineShardWorker",
    "ProcessShardWorker",
    "QUERY_ABANDONED",
    "QUERY_SERVED",
    "QUERY_SHED",
    "ServingFrontend",
    "ShardLoadModel",
    "ShardSaturatedError",
    "SimulatedLoadResult",
    "VenueRegistry",
    "load_venue_server",
    "resolve_serve",
    "simulate_queue_network",
    "simulate_shard_throughput",
]
