"""Consistent-hash placement of venues onto shards.

The serving layer spreads per-venue state (LSH table + counting-bloom
oracle + 3D point store) across shard workers.  Placement must be
*stable* — a venue's shard is a pure function of the venue name and the
shard set, identical across processes and runs — and *incremental*:
adding or removing one shard moves only the venues that hash into the
affected arc of the ring (~``1/num_shards`` of them), never reshuffles
everything, so a scale-out event invalidates the minimum amount of
warmed per-shard state.

Hash points come from SHA-256 (like :func:`repro.util.rng.derive_seed`),
never Python's ``hash`` — the ring must not depend on
``PYTHONHASHSEED``.  Each shard contributes ``replicas`` virtual nodes
so the arcs even out; lookups are a binary search over the sorted point
array.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["ConsistentHashRing"]


def _hash_point(seed: int, name: str) -> int:
    """Stable 64-bit ring position for ``name``."""
    digest = hashlib.sha256(f"{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class ConsistentHashRing:
    """Maps string keys (venue names) onto a set of shard ids.

    >>> ring = ConsistentHashRing(["shard-0", "shard-1"])
    >>> ring.route("office") in {"shard-0", "shard-1"}
    True
    """

    def __init__(
        self,
        shards: list[str] | tuple[str, ...] = (),
        replicas: int = 64,
        seed: int = 0,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = int(replicas)
        self.seed = int(seed)
        self._points: list[int] = []  # sorted hash points
        self._owners: list[str] = []  # shard owning the same-index point
        self._shards: set[str] = set()
        for shard in shards:
            self.add_shard(shard)

    @property
    def shards(self) -> list[str]:
        """Current shard ids, sorted."""
        return sorted(self._shards)

    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard: str) -> bool:
        return shard in self._shards

    def _virtual_points(self, shard: str) -> list[int]:
        return [
            _hash_point(self.seed, f"shard:{shard}:{replica}")
            for replica in range(self.replicas)
        ]

    def add_shard(self, shard: str) -> None:
        """Insert ``shard``'s virtual nodes; existing arcs shrink only."""
        if not shard:
            raise ValueError("shard id must be a non-empty string")
        if shard in self._shards:
            raise ValueError(f"shard {shard!r} already on the ring")
        for point in self._virtual_points(shard):
            index = bisect.bisect_left(self._points, point)
            self._points.insert(index, point)
            self._owners.insert(index, shard)
        self._shards.add(shard)

    def remove_shard(self, shard: str) -> None:
        """Drop ``shard``; its arcs fall to the clockwise successors."""
        if shard not in self._shards:
            raise KeyError(f"shard {shard!r} not on the ring")
        keep = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != shard
        ]
        self._points = [point for point, _ in keep]
        self._owners = [owner for _, owner in keep]
        self._shards.discard(shard)

    def route(self, key: str) -> str:
        """The shard owning ``key``: first virtual node clockwise."""
        if not self._shards:
            raise KeyError("cannot route on an empty ring")
        point = _hash_point(self.seed, f"key:{key}")
        index = bisect.bisect_right(self._points, point)
        if index == len(self._points):  # wrap past the last point
            index = 0
        return self._owners[index]

    def route_replicas(self, key: str, count: int) -> list[str]:
        """The first ``count`` *distinct* shards clockwise from ``key``.

        The successor-list replica set: entry 0 is :meth:`route`'s
        primary, the rest are the next distinct owners walking the ring.
        Stable under the same guarantees as :meth:`route` (pure function
        of the key and the shard set) and capped at the number of shards
        on the ring — asking for more replicas than shards returns them
        all rather than raising, so callers can over-provision
        ``replication_factor`` on small test rings.
        """
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if not self._shards:
            raise KeyError("cannot route on an empty ring")
        count = min(count, len(self._shards))
        point = _hash_point(self.seed, f"key:{key}")
        start = bisect.bisect_right(self._points, point)
        replicas: list[str] = []
        seen: set[str] = set()
        for offset in range(len(self._points)):
            owner = self._owners[(start + offset) % len(self._points)]
            if owner in seen:
                continue
            seen.add(owner)
            replicas.append(owner)
            if len(replicas) == count:
                break
        return replicas

    def placement(self, keys: list[str]) -> dict[str, list[str]]:
        """Group ``keys`` by owning shard (every shard gets an entry)."""
        out: dict[str, list[str]] = {shard: [] for shard in self.shards}
        for key in keys:
            out[self.route(key)].append(key)
        return out
