"""Discrete-event shard-queue simulator for serving capacity studies.

The repo's evaluation philosophy is simulated time: channels charge
simulated transfer seconds, latency figures add simulated legs.  The
serving layer follows suit.  Real per-query service times are measured
once (by actually executing queries against a venue engine), then this
simulator replays an open-loop arrival process against N shard queues to
answer the capacity question — *what aggregate queries/sec does a
topology sustain?* — independently of how many physical cores the
measurement host happens to have.

Model: queries arrive at fixed inter-arrival gaps (open loop), are
routed to shards round-robin over a deterministic venue cycle (matching
the consistent-hash spread of many venues over few shards), and each
shard is a single FIFO server (matching the one-process-per-shard
worker).  A bounded queue applies the frontend's admission policy:
arrivals beyond ``queue_depth`` waiting entries are shed.  Throughput is
completed queries over the makespan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ShardLoadModel", "SimulatedLoadResult", "simulate_shard_throughput"]


@dataclass(frozen=True)
class ShardLoadModel:
    """One topology to evaluate: N shards fed by an open-loop arrival stream."""

    num_shards: int
    queue_depth: int = 64
    # Offered load: one query every `interarrival_seconds` of simulated time.
    interarrival_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.interarrival_seconds < 0:
            raise ValueError("interarrival_seconds must be >= 0")


@dataclass
class SimulatedLoadResult:
    """Outcome of one simulated run."""

    num_shards: int
    served: int
    shed: int
    makespan_seconds: float
    busy_seconds_per_shard: list[float] = field(default_factory=list)
    wait_seconds_total: float = 0.0

    @property
    def queries_per_second(self) -> float:
        if self.makespan_seconds <= 0.0:
            return 0.0
        return self.served / self.makespan_seconds

    @property
    def mean_wait_seconds(self) -> float:
        return self.wait_seconds_total / self.served if self.served else 0.0

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan each shard spent serving."""
        if not self.busy_seconds_per_shard or self.makespan_seconds <= 0.0:
            return 0.0
        busy = sum(self.busy_seconds_per_shard) / len(self.busy_seconds_per_shard)
        return busy / self.makespan_seconds

    def as_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "served": self.served,
            "shed": self.shed,
            "makespan_seconds": self.makespan_seconds,
            "queries_per_second": self.queries_per_second,
            "mean_wait_seconds": self.mean_wait_seconds,
            "utilization": self.utilization,
        }


def simulate_shard_throughput(
    service_seconds: list[float],
    model: ShardLoadModel,
) -> SimulatedLoadResult:
    """Replay measured ``service_seconds`` through ``model``'s shard queues.

    Query *i* arrives at ``i * interarrival_seconds`` and is routed to
    shard ``i % num_shards`` (the round-robin limit of hashing many
    venues onto few shards).  Each shard serves FIFO, one query at a
    time.  If a query arrives while its shard already holds
    ``queue_depth`` queued-or-executing queries, it is shed
    (``admission="reject"``); with ``interarrival_seconds=0`` and a deep
    queue this degenerates to the closed-loop saturation throughput.
    """
    num_shards = model.num_shards
    # Per-shard state: when the server frees up, and queued arrival times.
    free_at = [0.0] * num_shards
    backlog: list[list[float]] = [[] for _ in range(num_shards)]
    busy = [0.0] * num_shards
    served = 0
    shed = 0
    wait_total = 0.0
    makespan = 0.0

    for index, service in enumerate(service_seconds):
        if service < 0:
            raise ValueError(f"service time {index} is negative: {service}")
        arrival = index * model.interarrival_seconds
        shard = index % num_shards
        # Retire backlog entries that started before this arrival.
        queue = backlog[shard]
        while queue and queue[0] <= arrival:
            queue.pop(0)
        if len(queue) >= model.queue_depth:
            shed += 1
            continue
        start = max(arrival, free_at[shard])
        finish = start + service
        free_at[shard] = finish
        queue.append(finish)
        busy[shard] += service
        wait_total += start - arrival
        served += 1
        if finish > makespan:
            makespan = finish

    return SimulatedLoadResult(
        num_shards=num_shards,
        served=served,
        shed=shed,
        makespan_seconds=makespan,
        busy_seconds_per_shard=busy,
        wait_seconds_total=wait_total,
    )
