"""Discrete-event shard-queue simulator for serving capacity studies.

The repo's evaluation philosophy is simulated time: channels charge
simulated transfer seconds, latency figures add simulated legs.  The
serving layer follows suit.  Real per-query service times are measured
once (by actually executing queries against a venue engine), then this
simulator replays an open-loop arrival process against N shard queues to
answer the capacity question — *what aggregate queries/sec does a
topology sustain?* — independently of how many physical cores the
measurement host happens to have.

Two entry points share one engine:

* :func:`simulate_shard_throughput` — the original fixed-gap replay:
  queries arrive every ``interarrival_seconds``, routed round-robin
  (matching the consistent-hash spread of many venues over few shards).
* :func:`simulate_queue_network` — the general form the
  :mod:`repro.loadgen` harness drives: explicit (sorted) arrival times,
  per-query candidate shard lists (replica sets — the query joins the
  shortest candidate queue), and an optional per-query *abandoned* mask
  for queries lost upstream (e.g. in a :class:`repro.network.faults
  .FaultyChannel` leg) that count as offered load but never reach a
  shard.

Each shard is a single FIFO server (matching the one-process-per-shard
worker).  A bounded queue applies the frontend's admission policy:
arrivals beyond ``queue_depth`` queued-or-executing entries are shed.

Accounting (the contract the regression tests in
``tests/test_serving.py`` lock):

* ``makespan_seconds = max(last_arrival, last_finish)`` — the run lasts
  until the later of the last offered arrival and the last served
  finish.  Dividing by served finishes alone overstates throughput when
  the tail of the offered stream never executes (abandoned upstream):
  those arrivals are real offered load and real elapsed time.
* ``queries_per_second = served / makespan_seconds`` — *sustained*
  throughput over the whole offered run, not over the served prefix.
* ``mean_wait_seconds`` averages queue wait over **served** queries
  only (shed/abandoned queries never start, so they have no wait);
  ``mean_wait_seconds_offered`` spreads the same total wait over every
  *offered* query.  Under overload the served-only mean can *improve*
  as shedding worsens — the served survivors are the ones that skipped
  the queue — so overload studies must read either form next to
  ``offered`` and ``shed_fraction``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

__all__ = [
    "QUERY_ABANDONED",
    "QUERY_SERVED",
    "QUERY_SHED",
    "ShardLoadModel",
    "SimulatedLoadResult",
    "simulate_queue_network",
    "simulate_shard_throughput",
]

# Per-query outcome codes emitted by simulate_queue_network.
QUERY_SERVED = 0
QUERY_SHED = 1
QUERY_ABANDONED = 2


@dataclass(frozen=True)
class ShardLoadModel:
    """One topology to evaluate: N shards fed by an open-loop arrival stream."""

    num_shards: int
    queue_depth: int = 64
    # Offered load: one query every `interarrival_seconds` of simulated time.
    interarrival_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.interarrival_seconds < 0:
            raise ValueError("interarrival_seconds must be >= 0")


@dataclass
class SimulatedLoadResult:
    """Outcome of one simulated run.

    ``served + shed + abandoned == offered`` always holds; the
    ``abandoned`` bucket is only populated by
    :func:`simulate_queue_network` callers that model an upstream
    (channel) leg.
    """

    num_shards: int
    served: int
    shed: int
    makespan_seconds: float
    busy_seconds_per_shard: list[float] = field(default_factory=list)
    wait_seconds_total: float = 0.0
    abandoned: int = 0
    last_arrival_seconds: float = 0.0
    last_finish_seconds: float = 0.0

    @property
    def offered(self) -> int:
        """Every query that arrived, whether or not a shard ever saw it."""
        return self.served + self.shed + self.abandoned

    @property
    def queries_per_second(self) -> float:
        """Served throughput over the *offered* run duration.

        The makespan extends to the last offered arrival even when that
        arrival was shed or abandoned — a run whose tail is entirely
        dropped must not divide by the early finish of its served
        prefix.
        """
        if self.makespan_seconds <= 0.0:
            return 0.0
        return self.served / self.makespan_seconds

    @property
    def shed_fraction(self) -> float:
        """Fraction of offered queries rejected at shard admission."""
        return self.shed / self.offered if self.offered else 0.0

    @property
    def mean_wait_seconds(self) -> float:
        """Queue wait averaged over *served* queries only.

        Shed queries never wait, so this average silently improves as
        overload worsens (the survivors are the lucky ones); read it
        alongside ``offered``/``shed_fraction`` or use
        :attr:`mean_wait_seconds_offered`.
        """
        return self.wait_seconds_total / self.served if self.served else 0.0

    @property
    def mean_wait_seconds_offered(self) -> float:
        """Total queue wait spread over every *offered* query.

        Answers "what queue-wait cost did one offered query impose on
        average" — the complementary view to :attr:`mean_wait_seconds`'s
        "how long did a survivor wait".  Neither alone characterizes
        overload (a run that sheds 90% of traffic has *low* wait under
        both definitions); saturation studies must read them next to
        ``offered`` and ``shed_fraction``.
        """
        return self.wait_seconds_total / self.offered if self.offered else 0.0

    @property
    def utilization(self) -> float:
        """Mean fraction of the makespan each shard spent serving."""
        if not self.busy_seconds_per_shard or self.makespan_seconds <= 0.0:
            return 0.0
        busy = sum(self.busy_seconds_per_shard) / len(self.busy_seconds_per_shard)
        return busy / self.makespan_seconds

    def as_dict(self) -> dict:
        return {
            "num_shards": self.num_shards,
            "offered": self.offered,
            "served": self.served,
            "shed": self.shed,
            "abandoned": self.abandoned,
            "makespan_seconds": self.makespan_seconds,
            "last_arrival_seconds": self.last_arrival_seconds,
            "last_finish_seconds": self.last_finish_seconds,
            "queries_per_second": self.queries_per_second,
            "shed_fraction": self.shed_fraction,
            "mean_wait_seconds": self.mean_wait_seconds,
            "mean_wait_seconds_offered": self.mean_wait_seconds_offered,
            "utilization": self.utilization,
        }


def simulate_queue_network(
    arrivals: Sequence[float],
    service_seconds: Sequence[float],
    shard_choices: Sequence[Sequence[int]] | Sequence[int],
    num_shards: int,
    queue_depth: int = 64,
    abandoned: Sequence[bool] | None = None,
    on_served: Callable[[int, float, float], None] | None = None,
    on_arrival: Callable[[int, int, int], None] | None = None,
) -> tuple[SimulatedLoadResult, list[int]]:
    """Replay an explicit arrival stream through bounded FIFO shard queues.

    ``arrivals`` must be sorted ascending (simulated seconds).  Query
    ``i`` runs for ``service_seconds[i]`` on one shard drawn from
    ``shard_choices[i]`` — an int for fixed placement, or a sequence of
    candidate shard indices (a replica set) of which the query joins the
    *shortest* queue (ties break toward the earlier candidate, keeping
    replica routing deterministic).  If every candidate already holds
    ``queue_depth`` queued-or-executing queries, the query is shed.

    ``abandoned[i]`` marks queries lost upstream of admission (channel
    retry budget exhausted): they count as offered load and extend the
    makespan but never touch a queue.

    Hooks (both optional, both called in arrival order):

    * ``on_served(index, wait_seconds, finish_seconds)`` after each
      admission — e.g. to observe per-query latency into a sketch;
    * ``on_arrival(index, shard, depth)`` with the routed shard and its
      queue depth *before* this query joins (shed queries report the
      depth of their least-loaded candidate) — e.g. to sample queue
      depth distributions.

    Returns the aggregate :class:`SimulatedLoadResult` plus a per-query
    outcome list (``QUERY_SERVED`` / ``QUERY_SHED`` /
    ``QUERY_ABANDONED``).
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if queue_depth < 1:
        raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
    if len(arrivals) != len(service_seconds):
        raise ValueError(
            f"arrivals and service_seconds disagree on length "
            f"({len(arrivals)} vs {len(service_seconds)})"
        )
    # Per-shard state: when the server frees up, and queued finish times.
    free_at = [0.0] * num_shards
    backlog: list[deque[float]] = [deque() for _ in range(num_shards)]
    busy = [0.0] * num_shards
    served = 0
    shed = 0
    dropped = 0
    wait_total = 0.0
    last_arrival = 0.0
    last_finish = 0.0
    previous_arrival = -float("inf")
    outcomes = [QUERY_SERVED] * len(arrivals)

    for index, service in enumerate(service_seconds):
        if service < 0:
            raise ValueError(f"service time {index} is negative: {service}")
        arrival = arrivals[index]
        if arrival < previous_arrival:
            raise ValueError(
                f"arrivals must be sorted ascending (query {index} at "
                f"{arrival} after {previous_arrival})"
            )
        previous_arrival = arrival
        if arrival > last_arrival:
            last_arrival = arrival
        if abandoned is not None and abandoned[index]:
            dropped += 1
            outcomes[index] = QUERY_ABANDONED
            continue
        choices = shard_choices[index]
        if isinstance(choices, int):
            choices = (choices,)
        # Join the shortest candidate queue (first wins ties).
        shard = -1
        depth = queue_depth + 1
        for candidate in choices:
            queue = backlog[candidate]
            while queue and queue[0] <= arrival:
                queue.popleft()
            if len(queue) < depth:
                depth = len(queue)
                shard = candidate
        if on_arrival is not None:
            on_arrival(index, shard, depth)
        if depth >= queue_depth:
            shed += 1
            outcomes[index] = QUERY_SHED
            continue
        start = max(arrival, free_at[shard])
        finish = start + service
        free_at[shard] = finish
        backlog[shard].append(finish)
        busy[shard] += service
        wait = start - arrival
        wait_total += wait
        served += 1
        if finish > last_finish:
            last_finish = finish
        if on_served is not None:
            on_served(index, wait, finish)

    result = SimulatedLoadResult(
        num_shards=num_shards,
        served=served,
        shed=shed,
        abandoned=dropped,
        makespan_seconds=max(last_arrival, last_finish),
        busy_seconds_per_shard=busy,
        wait_seconds_total=wait_total,
        last_arrival_seconds=last_arrival,
        last_finish_seconds=last_finish,
    )
    return result, outcomes


def simulate_shard_throughput(
    service_seconds: list[float],
    model: ShardLoadModel,
) -> SimulatedLoadResult:
    """Replay measured ``service_seconds`` through ``model``'s shard queues.

    Query *i* arrives at ``i * interarrival_seconds`` and is routed to
    shard ``i % num_shards`` (the round-robin limit of hashing many
    venues onto few shards).  Each shard serves FIFO, one query at a
    time.  If a query arrives while its shard already holds
    ``queue_depth`` waiting-or-executing queries, it is shed
    (``admission="reject"``); with ``interarrival_seconds=0`` and a deep
    queue this degenerates to the closed-loop saturation throughput.
    """
    gap = model.interarrival_seconds
    num_shards = model.num_shards
    arrivals = [index * gap for index in range(len(service_seconds))]
    shard_choices = [index % num_shards for index in range(len(service_seconds))]
    result, _ = simulate_queue_network(
        arrivals,
        service_seconds,
        shard_choices,
        num_shards,
        queue_depth=model.queue_depth,
    )
    return result
