"""The venue registry: names → engines → shards.

A *venue* is one deployed VisualPrint site (an office, a museum wing): a
keypoint-to-3D LSH table, a curated counting-bloom oracle, and the 3D
point store — i.e. one :class:`repro.core.VisualPrintServer` acting as
the single-shard engine.  The registry is the serving layer's source of
truth for which venues exist, which shard owns each (consistent
hashing, see :class:`repro.serving.ConsistentHashRing`), and how venue
state moves in and out of durable storage.

Persistence and download flows are *per venue* and route through the
existing integrity layer: :meth:`save_venue`/:meth:`load_venue` commit
and restore checksummed generations via
:class:`repro.core.persistence.ServerStateStore` (rollback to last-good
on corruption), and :meth:`refresh_venue` drives a client-side
:class:`repro.core.OracleRefresher` against the venue's oracle with
swap-in validation and quarantine.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

import numpy as np

from repro.serving.hashring import ConsistentHashRing
from repro.serving.shards import EngineSpec

__all__ = ["VenueRegistry", "load_venue_server"]


def load_venue_server(root: str | Path, name: str, registry=None):
    """Restore venue ``name``'s server from its snapshot store.

    Module-level and picklable on its arguments, so it doubles as the
    :class:`repro.serving.shards.EngineSpec` builder for process-mode
    shards: each worker restores its venues from the verified store
    inside its own registry scope.
    """
    from repro.core.persistence import ServerStateStore

    store = ServerStateStore(Path(root) / name, registry=registry)
    server, _ = store.load()
    return server


class VenueRegistry:
    """Venue name → engine placement over a consistent-hash ring."""

    def __init__(
        self,
        num_shards: int = 1,
        replicas: int = 64,
        seed: int = 0,
        shard_ids: list[str] | None = None,
        replication_factor: int = 1,
    ) -> None:
        if shard_ids is None:
            if num_shards < 1:
                raise ValueError(f"num_shards must be >= 1, got {num_shards}")
            shard_ids = [f"shard-{index}" for index in range(num_shards)]
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got {replication_factor}"
            )
        self.ring = ConsistentHashRing(shard_ids, replicas=replicas, seed=seed)
        self.replication_factor = int(replication_factor)
        self._engines: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    @property
    def venues(self) -> list[str]:
        """Registered venue names, sorted."""
        return sorted(self._engines)

    @property
    def shard_ids(self) -> list[str]:
        return self.ring.shards

    def __len__(self) -> int:
        return len(self._engines)

    def __contains__(self, name: str) -> bool:
        return name in self._engines

    def register(self, name: str, engine: Any) -> str:
        """Add a venue; returns the shard id the ring places it on.

        ``engine`` is a live engine (``serve``/``localize``), a bare
        :class:`repro.core.VisualPrintServer`, or an
        :class:`repro.serving.shards.EngineSpec` builder for process
        shards.
        """
        if not name:
            raise ValueError("venue name must be a non-empty string")
        if name in self._engines:
            raise ValueError(f"venue {name!r} already registered")
        self._engines[name] = engine
        return self.shard_for(name)

    def unregister(self, name: str) -> None:
        if name not in self._engines:
            raise KeyError(f"venue {name!r} not registered")
        del self._engines[name]

    def engine(self, name: str) -> Any:
        if name not in self._engines:
            raise KeyError(f"venue {name!r} not registered")
        return self._engines[name]

    def shard_for(self, name: str) -> str:
        """The shard owning ``name`` (pure ring function; any string routes)."""
        return self.ring.route(name)

    def shards_for(self, name: str) -> list[str]:
        """The venue's replica set: ``replication_factor`` distinct shards.

        Entry 0 is :meth:`shard_for`'s primary owner; the rest are the
        ring's clockwise successors (capped at the shard count).  A hot
        venue registered with ``replication_factor > 1`` serves from
        every shard in this list, so skewed Zipf traffic spreads instead
        of melting one queue.
        """
        return self.ring.route_replicas(name, self.replication_factor)

    def placement(self) -> dict[str, list[str]]:
        """Shard id → sorted venue names placed there (replicas included).

        With ``replication_factor > 1`` a venue appears under every
        shard in its replica set, so column sums exceed ``len(self)``.
        """
        if self.replication_factor == 1:
            return self.ring.placement(self.venues)
        out: dict[str, list[str]] = {shard: [] for shard in self.shard_ids}
        for name in self.venues:
            for shard in self.shards_for(name):
                out[shard].append(name)
        return out

    # ------------------------------------------------------------------
    # Durable state, per venue
    # ------------------------------------------------------------------

    def venue_store(self, name: str, root: str | Path, registry=None):
        """The venue's generational snapshot store under ``root/name``."""
        from repro.core.persistence import ServerStateStore

        return ServerStateStore(Path(root) / name, registry=registry)

    def save_venue(self, name: str, root: str | Path, registry=None) -> int:
        """Commit the venue's server state as a new checksummed generation."""
        server = self._require_server(name)
        return self.venue_store(name, root, registry=registry).save(server)

    def load_venue(self, name: str, root: str | Path, registry=None) -> str:
        """Restore a venue from its store and register it; returns its shard.

        Rollback and corruption semantics are the store's: the newest
        generation that verifies wins, and
        :class:`repro.bloom.SnapshotCorruptError` escapes when nothing
        does.
        """
        server = load_venue_server(root, name, registry=registry)
        return self.register(name, server)

    def spec_for_stored_venue(self, name: str, root: str | Path) -> EngineSpec:
        """A picklable builder restoring ``name`` from ``root`` in a worker."""
        return EngineSpec(load_venue_server, str(root), name)

    def refresh_venue(
        self,
        name: str,
        refresher,
        channel=None,
        rng: np.random.Generator | None = None,
        now_seconds: float = 0.0,
    ):
        """Pull this venue's oracle down into ``refresher``'s client copy.

        The per-venue download flow: delta-or-snapshot selection, retry
        over ``channel``, swap-in validation, quarantine on corruption —
        all :class:`repro.core.OracleRefresher` semantics, aimed at the
        venue's published oracle.
        """
        server = self._require_server(name)
        return refresher.refresh(
            server.publish_oracle(), channel=channel, rng=rng, now_seconds=now_seconds
        )

    def _require_server(self, name: str):
        engine = self.engine(name)
        server = getattr(engine, "server", engine)
        if not hasattr(server, "oracle"):
            raise TypeError(
                f"venue {name!r} engine ({type(engine).__name__}) does not "
                "expose VisualPrintServer state"
            )
        return server
