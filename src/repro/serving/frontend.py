"""The asyncio serving front-end: admit → route → execute → account.

:class:`ServingFrontend` is the multi-venue request path the paper's
server implies but never builds: many clients, many venues, one
admission point.  Each query names a venue; the venue registry's
consistent-hash ring picks the owning shard; a bounded per-shard queue
applies backpressure (``admission="wait"`` parks the caller,
``admission="reject"`` raises :class:`ShardSaturatedError` immediately —
the load-shedding mode); the shard worker executes the venue engine.

Observability: per-shard saturation gauges
(``serving_shard_queue_depth`` / ``serving_shard_saturation``),
admitted/rejected/served/failed counters, queue-wait and service-time
histograms, and a per-shard admission-to-completion
``serving_e2e_seconds`` quantile sketch (mergeable p50/p99/p999 — see
:mod:`repro.obs.sketch`) — all labeled by shard, all in the frontend's
:class:`repro.obs.MetricsRegistry`.  Admission rejects and topology
changes additionally land in the contextual
:class:`repro.obs.EventLog`, and every query outcome feeds the
resolved :class:`repro.obs.SloTracker` (explicit argument, else the
:func:`repro.obs.use_slo_tracker` context) under per-venue and
per-shard scopes.

Parity: with one shard and inline workers (the defaults), queries
execute synchronously in admission order in the calling process, so
driving a workload through the frontend is bit-identical to calling the
engines directly — the acceptance bar the fig13 serving path is held to.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Iterable

from repro.obs import MetricsRegistry, emit_event, resolve_registry
from repro.obs.slo import SloTracker, current_slo_tracker
from repro.serving.registry import VenueRegistry
from repro.serving.shards import InlineShardWorker, ProcessShardWorker

__all__ = ["ServingFrontend", "ShardSaturatedError"]

_ADMISSION_MODES = ("wait", "reject")


class ShardSaturatedError(RuntimeError):
    """A shard's bounded queue was full and the admission policy rejects."""

    def __init__(self, shard_id: str, venue: str, queue_depth: int) -> None:
        super().__init__(
            f"shard {shard_id!r} is saturated ({queue_depth} queries "
            f"queued); query for venue {venue!r} rejected"
        )
        self.shard_id = shard_id
        self.venue = venue


class _ShardState:
    """One shard's worker, queue accounting, and bound instruments."""

    def __init__(self, shard_id: str, worker, registry: MetricsRegistry) -> None:
        self.shard_id = shard_id
        self.worker = worker
        self.depth = 0
        self.m_depth = registry.gauge(
            "serving_shard_queue_depth",
            help="queries queued or executing on this shard",
            shard=shard_id,
        )
        self.m_saturation = registry.gauge(
            "serving_shard_saturation",
            help="shard queue depth over its bound (1.0 = full)",
            shard=shard_id,
        )
        self.m_admitted = registry.counter(
            "serving_queries_admitted_total",
            help="queries admitted past the shard queue bound",
            shard=shard_id,
        )
        self.m_rejected = registry.counter(
            "serving_queries_rejected_total",
            help="queries shed because the shard queue was full",
            shard=shard_id,
        )
        self.m_served = registry.counter(
            "serving_queries_served_total",
            help="queries answered by this shard",
            shard=shard_id,
        )
        self.m_failed = registry.counter(
            "serving_queries_failed_total",
            help="queries whose engine raised",
            shard=shard_id,
        )
        self.m_service = registry.histogram(
            "serving_request_seconds",
            help="engine execution wall-clock per query",
            shard=shard_id,
        )
        self.m_e2e = registry.sketch(
            "serving_e2e_seconds",
            help="admission-to-completion wall-clock per query (sketch)",
            shard=shard_id,
        )

    def set_depth(self, depth: int, queue_depth: int) -> None:
        # Clamp: a release racing a reject-path decrement must never
        # drive the published depth negative or saturation out of [0, 1].
        depth = max(0, int(depth))
        self.depth = depth
        self.m_depth.set(float(depth))
        saturation = depth / queue_depth if queue_depth else 0.0
        self.m_saturation.set(min(max(saturation, 0.0), 1.0))


class ServingFrontend:
    """Admission-controlled async router over sharded venue engines."""

    def __init__(
        self,
        num_shards: int = 1,
        workers: int = 1,
        queue_depth: int = 64,
        admission: str = "wait",
        replicas: int = 64,
        seed: int = 0,
        registry: MetricsRegistry | None = None,
        slo: SloTracker | None = None,
        replication_factor: int = 1,
    ) -> None:
        if queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {queue_depth}")
        if admission not in _ADMISSION_MODES:
            raise ValueError(
                f"admission must be one of {_ADMISSION_MODES}, got {admission!r}"
            )
        self.queue_depth = int(queue_depth)
        self.admission = admission
        self.process_mode = int(workers) > 1
        self._registry = resolve_registry(registry)
        self.slo = slo if slo is not None else current_slo_tracker()
        self.venues = VenueRegistry(
            num_shards,
            replicas=replicas,
            seed=seed,
            replication_factor=replication_factor,
        )
        self._shards: dict[str, _ShardState] = {}
        for shard_id in self.venues.shard_ids:
            self._add_shard_state(shard_id)
        self._m_venues = self._registry.gauge(
            "serving_venues", help="venues currently registered"
        )
        self._m_shards = self._registry.gauge(
            "serving_shards", help="shards on the placement ring"
        )
        self._m_queue_wait = self._registry.histogram(
            "serving_queue_wait_seconds",
            help="admission-to-execution wait per query",
        )
        self._m_shards.set(float(len(self._shards)))
        # Per-event-loop admission semaphores (asyncio primitives bind to
        # the loop that first awaits them; each asyncio.run gets fresh ones).
        self._sems: dict[str, asyncio.Semaphore] = {}
        self._sems_loop: asyncio.AbstractEventLoop | None = None

    @classmethod
    def from_config(cls, config, registry: MetricsRegistry | None = None) -> "ServingFrontend":
        """Build a frontend from a :class:`repro.core.config.ServerConfig`."""
        return cls(
            num_shards=config.num_shards,
            workers=config.workers,
            queue_depth=config.queue_depth,
            admission=config.admission,
            replicas=config.hash_replicas,
            seed=config.seed,
            registry=registry,
            replication_factor=getattr(config, "replication_factor", 1),
        )

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        return self._registry

    def _add_shard_state(self, shard_id: str) -> None:
        worker_cls = ProcessShardWorker if self.process_mode else InlineShardWorker
        self._shards[shard_id] = _ShardState(
            shard_id, worker_cls(shard_id), self._registry
        )
        self._shards[shard_id].set_depth(0, self.queue_depth)

    def register_venue(self, name: str, engine: Any) -> str:
        """Place a venue on the ring and attach its engine to every owner.

        With ``replication_factor > 1`` the engine attaches to the whole
        replica set; the return value is the primary shard.
        """
        shard_id = self.venues.register(name, engine)
        for replica in self.venues.shards_for(name):
            self._shards[replica].worker.attach(name, engine)
        self._m_venues.set(float(len(self.venues)))
        return shard_id

    def unregister_venue(self, name: str) -> None:
        replicas = self.venues.shards_for(name)
        self.venues.unregister(name)
        for shard_id in replicas:
            self._shards[shard_id].worker.detach(name)
        self._m_venues.set(float(len(self.venues)))

    def add_shard(self, shard_id: str | None = None) -> list[str]:
        """Grow the ring by one shard; returns the venues that moved.

        Consistent hashing guarantees only venues landing on the new
        shard's arcs move — everything else keeps its warm placement.
        """
        if shard_id is None:
            index = len(self._shards)
            while f"shard-{index}" in self._shards:
                index += 1
            shard_id = f"shard-{index}"
        before = self.venues.placement()
        self.venues.ring.add_shard(shard_id)
        self._add_shard_state(shard_id)
        self._m_shards.set(float(len(self._shards)))
        moved = self._rebalance(before)
        emit_event("shard.add", shard=shard_id, moved=moved)
        return moved

    def remove_shard(self, shard_id: str) -> list[str]:
        """Drain a shard off the ring; its venues fall to ring successors."""
        if len(self._shards) <= 1:
            raise ValueError("cannot remove the last shard")
        before = self.venues.placement()
        self.venues.ring.remove_shard(shard_id)
        state = self._shards.pop(shard_id)
        moved = self._rebalance(before, closing=state)
        state.worker.close(self._registry)
        self._m_shards.set(float(len(self._shards)))
        emit_event("shard.remove", shard=shard_id, moved=moved)
        return moved

    def _rebalance(self, before: dict[str, list[str]], closing=None) -> list[str]:
        # Venue-centric diff of the two placements: a venue "moved" when
        # its replica set changed at all; it attaches on shards it
        # gained and detaches from shards it lost (which keeps the diff
        # correct when replication places one venue on several shards).
        after = self.venues.placement()
        before_sets: dict[str, set[str]] = {}
        for shard_id, names in before.items():
            for name in names:
                before_sets.setdefault(name, set()).add(shard_id)
        after_sets: dict[str, set[str]] = {}
        for shard_id, names in after.items():
            for name in names:
                after_sets.setdefault(name, set()).add(shard_id)
        moved: list[str] = []
        for name in sorted(after_sets):
            old = before_sets.get(name, set())
            new = after_sets[name]
            if old == new:
                continue
            moved.append(name)
            for shard_id in sorted(new - old):
                self._shards[shard_id].worker.attach(
                    name, self.venues.engine(name)
                )
            for shard_id in sorted(old - new):
                old_state = (
                    closing
                    if closing is not None and closing.shard_id == shard_id
                    else self._shards.get(shard_id)
                )
                if old_state is not None:
                    old_state.worker.detach(name)
        return moved

    def placement(self) -> dict[str, list[str]]:
        return self.venues.placement()

    def shard_saturation(self, shard_id: str) -> float:
        state = self._shards[shard_id]
        return state.depth / self.queue_depth

    # ------------------------------------------------------------------
    # Query path
    # ------------------------------------------------------------------

    def _semaphore(self, shard_id: str) -> asyncio.Semaphore:
        loop = asyncio.get_running_loop()
        if self._sems_loop is not loop:
            self._sems = {
                sid: asyncio.Semaphore(self.queue_depth) for sid in self._shards
            }
            self._sems_loop = loop
        elif shard_id not in self._sems:
            self._sems[shard_id] = asyncio.Semaphore(self.queue_depth)
        return self._sems[shard_id]

    async def submit(self, venue: str, payload: Any) -> Any:
        """Admit one query, route it to its venue's shard, await the answer.

        Raises :class:`ShardSaturatedError` under ``admission="reject"``
        when the shard's bounded queue is full; otherwise waits (the
        backpressure propagates to the caller's send loop).  Engine
        exceptions propagate after being counted.
        """
        self.venues.engine(venue)  # unknown venues fail before admission
        if self.venues.replication_factor == 1:
            shard_id = self.venues.shard_for(venue)
        else:
            # Replicated venue: join the shortest replica queue (ties
            # break toward the primary — the replica-list order — so
            # routing stays deterministic).
            shard_id = min(
                self.venues.shards_for(venue),
                key=lambda sid: self._shards[sid].depth,
            )
        state = self._shards[shard_id]
        if self.admission == "reject" and state.depth >= self.queue_depth:
            state.m_rejected.inc()
            emit_event(
                "admission.reject",
                shard=shard_id,
                venue=venue,
                depth=state.depth,
                queue_depth=self.queue_depth,
            )
            self._record_slo(shard_id, venue, None, ok=False)
            raise ShardSaturatedError(shard_id, venue, self.queue_depth)
        waited = time.perf_counter()
        semaphore = self._semaphore(shard_id)
        await semaphore.acquire()
        self._m_queue_wait.observe(time.perf_counter() - waited)
        state.m_admitted.inc()
        state.set_depth(state.depth + 1, self.queue_depth)
        started = time.perf_counter()
        try:
            if self.process_mode:
                result = await asyncio.wrap_future(
                    state.worker.submit(venue, payload)
                )
            else:
                result = state.worker.serve(venue, payload)
        except BaseException:
            state.m_failed.inc()
            self._record_slo(
                shard_id, venue, time.perf_counter() - waited, ok=False
            )
            raise
        else:
            state.m_served.inc()
            state.m_service.observe(time.perf_counter() - started)
            e2e = time.perf_counter() - waited
            state.m_e2e.observe(e2e)
            self._record_slo(shard_id, venue, e2e, ok=True)
            return result
        finally:
            state.set_depth(state.depth - 1, self.queue_depth)
            semaphore.release()

    def _record_slo(
        self, shard_id: str, venue: str, latency: float | None, ok: bool
    ) -> None:
        """Feed one query outcome to the SLO tracker, per-shard and per-venue."""
        if self.slo is None:
            return
        self.slo.record(latency_seconds=latency, ok=ok, shard=shard_id)
        self.slo.record(latency_seconds=latency, ok=ok, venue=venue)

    def call(self, venue: str, payload: Any) -> Any:
        """Synchronous single query (runs a private event loop)."""
        return asyncio.run(self.submit(venue, payload))

    def map(self, venue: str, payloads: Iterable[Any]) -> list[Any]:
        """Serve a payload batch against one venue; results in order."""
        return self.map_many([(venue, payload) for payload in payloads])

    def map_many(self, items: list[tuple[str, Any]]) -> list[Any]:
        """Serve ``(venue, payload)`` pairs concurrently; results in order.

        Inline workers execute sequentially in submission order (the
        parity mode); process workers overlap across shards while this
        thread multiplexes the event loop.
        """

        async def _run() -> list[Any]:
            return await asyncio.gather(
                *(self.submit(venue, payload) for venue, payload in items)
            )

        return asyncio.run(_run())

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down shard workers, merging process-mode metrics back."""
        for state in self._shards.values():
            state.worker.close(self._registry)

    def __enter__(self) -> "ServingFrontend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
