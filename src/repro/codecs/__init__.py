"""Image and video codecs, built from first principles.

Figure 2 compares the uplink cost of RAW, lossless (PNG), lossy (JPEG),
and H264 streams; Figure 3 shows how lossy compression destroys SIFT
keypoints.  These codecs reproduce the mechanisms behind both results:

* :class:`RawCodec` — uncompressed pixels.
* :class:`PngCodec` — PNG's actual core: per-scanline predictive filters
  (None/Sub/Up/Average/Paeth, chosen per row) followed by DEFLATE.
  Lossless by construction.
* :class:`JpegCodec` — JPEG's actual core: 8x8 block DCT, quality-scaled
  quantization matrix, zigzag ordering, and entropy coding (DEFLATE
  standing in for Huffman tables).  Lossy: decode returns the degraded
  image so keypoint-loss experiments measure real quantization damage.
* :class:`H264Codec` — a motion-compensated inter-frame codec model:
  I-frames are JPEG-like, P-frames encode block-matched residuals at
  coarser quantization.  Reproduces why video streams are an order
  cheaper than independent stills.
"""

from repro.codecs.base import Codec, EncodedFrame, VideoCodec
from repro.codecs.h264c import H264Codec
from repro.codecs.jpegc import JpegCodec
from repro.codecs.pngc import PngCodec
from repro.codecs.rawc import RawCodec

__all__ = [
    "Codec",
    "EncodedFrame",
    "H264Codec",
    "JpegCodec",
    "PngCodec",
    "RawCodec",
    "VideoCodec",
]
