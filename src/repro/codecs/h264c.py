"""H264-style motion-compensated video codec model.

Real H.264 owes its rate advantage to inter-frame prediction: most
macroblocks of frame *t* are well predicted by a translated block of
frame *t-1*, so only quantized residuals are coded.  This codec
implements that mechanism directly:

* **I-frames** (every ``gop`` frames) are JPEG-core coded.
* **P-frames**: each 16x16 macroblock searches a small window of the
  *reconstructed* previous frame for its best translation (sum of
  absolute differences), then DCT-quantizes the residual at a coarser
  quality.  Motion vectors and residual coefficients are entropy coded
  together.

Decoding mirrors encoding from the reconstructed reference, so encoder
and decoder never drift.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.codecs.base import EncodedFrame, VideoCodec
from repro.codecs.jpegc import JpegCodec

__all__ = ["H264Codec"]

_MB = 16  # macroblock size
_P_HEADER = struct.Struct("<cII")


class H264Codec(VideoCodec):
    """GOP-structured motion-compensated codec."""

    name = "h264"

    def __init__(
        self,
        i_quality: int = 60,
        p_quality: int = 35,
        gop: int = 10,
        search_range: int = 8,
    ) -> None:
        if gop < 1:
            raise ValueError(f"gop must be >= 1, got {gop}")
        if search_range < 0:
            raise ValueError(f"search_range must be >= 0, got {search_range}")
        self.gop = int(gop)
        self.search_range = int(search_range)
        self._i_codec = JpegCodec(quality=i_quality)
        self._p_codec = JpegCodec(quality=p_quality)

    # -- motion estimation ------------------------------------------------

    def _motion_search(
        self, reference: np.ndarray, block: np.ndarray, top: int, left: int
    ) -> tuple[int, int]:
        """Best (dy, dx) translation of ``block`` in the reference window."""
        height, width = reference.shape
        best = (0, 0)
        best_cost = np.inf
        step = max(1, self.search_range // 4)
        ref_i32 = reference.astype(np.int32)
        block_i32 = block.astype(np.int32)
        for dy in range(-self.search_range, self.search_range + 1, step):
            for dx in range(-self.search_range, self.search_range + 1, step):
                y0, x0 = top + dy, left + dx
                if y0 < 0 or x0 < 0 or y0 + _MB > height or x0 + _MB > width:
                    continue
                candidate = ref_i32[y0 : y0 + _MB, x0 : x0 + _MB]
                cost = np.abs(candidate - block_i32).sum()
                if cost < best_cost:
                    best_cost = cost
                    best = (dy, dx)
        return best

    def _predict(self, reference: np.ndarray, motion: np.ndarray) -> np.ndarray:
        """Assemble the motion-compensated prediction frame."""
        height, width = reference.shape
        prediction = np.empty_like(reference)
        rows = height // _MB
        cols = width // _MB
        for row in range(rows):
            for col in range(cols):
                dy, dx = int(motion[row, col, 0]), int(motion[row, col, 1])
                y0 = row * _MB + dy
                x0 = col * _MB + dx
                prediction[row * _MB : (row + 1) * _MB, col * _MB : (col + 1) * _MB] = (
                    reference[y0 : y0 + _MB, x0 : x0 + _MB]
                )
        return prediction

    def _encode_p_frame(
        self, frame: np.ndarray, reference: np.ndarray
    ) -> tuple[bytes, np.ndarray]:
        height, width = frame.shape
        if height % _MB or width % _MB:
            raise ValueError(
                f"frame dims must be multiples of {_MB}, got {frame.shape}"
            )
        rows, cols = height // _MB, width // _MB
        motion = np.zeros((rows, cols, 2), dtype=np.int8)
        for row in range(rows):
            for col in range(cols):
                block = frame[row * _MB : (row + 1) * _MB, col * _MB : (col + 1) * _MB]
                motion[row, col] = self._motion_search(
                    reference, block, row * _MB, col * _MB
                )
        prediction = self._predict(reference, motion)
        residual = frame.astype(np.int16) - prediction.astype(np.int16)
        # Shift residual into uint8 range for the JPEG-core transform stage.
        shifted = np.clip(residual // 2 + 128, 0, 255).astype(np.uint8)
        zigzagged, ph, pw = self._p_codec.quantize_blocks(shifted)
        body = zlib.compress(
            motion.tobytes() + zigzagged.astype("<i2").tobytes(), 9
        )
        payload = _P_HEADER.pack(b"V", height, width) + body

        # Reconstruct exactly as the decoder will.
        decoded_shifted = self._p_codec.dequantize_blocks(
            zigzagged, ph, pw, height, width
        )
        reconstructed = np.clip(
            prediction.astype(np.int32)
            + (decoded_shifted.astype(np.int32) - 128) * 2,
            0,
            255,
        ).astype(np.uint8)
        return payload, reconstructed

    def _decode_p_frame(self, payload: bytes, reference: np.ndarray) -> np.ndarray:
        tag, height, width = _P_HEADER.unpack_from(payload, 0)
        if tag != b"V":
            raise ValueError("not a P-frame payload")
        raw = zlib.decompress(payload[_P_HEADER.size :])
        rows, cols = height // _MB, width // _MB
        motion_bytes = rows * cols * 2
        motion = np.frombuffer(raw, dtype=np.int8, count=motion_bytes).reshape(
            rows, cols, 2
        )
        zigzagged = np.frombuffer(raw[motion_bytes:], dtype="<i2").reshape(-1, 64)
        ph = (height + 7) // 8 * 8
        pw = (width + 7) // 8 * 8
        decoded_shifted = self._p_codec.dequantize_blocks(
            zigzagged.astype(np.int16), ph, pw, height, width
        )
        prediction = self._predict(reference, motion)
        return np.clip(
            prediction.astype(np.int32)
            + (decoded_shifted.astype(np.int32) - 128) * 2,
            0,
            255,
        ).astype(np.uint8)

    # -- public API --------------------------------------------------------

    def encode_sequence(self, frames: list[np.ndarray]) -> list[EncodedFrame]:
        encoded: list[EncodedFrame] = []
        reference: np.ndarray | None = None
        for index, frame in enumerate(frames):
            frame = np.asarray(frame)
            if frame.dtype != np.uint8:
                raise ValueError(f"frames must be uint8, got {frame.dtype}")
            if index % self.gop == 0 or reference is None:
                payload = self._i_codec.encode(frame)
                reference = self._i_codec.decode(payload)
                encoded.append(EncodedFrame(payload=payload, frame_type="I"))
            else:
                payload, reference = self._encode_p_frame(frame, reference)
                encoded.append(EncodedFrame(payload=payload, frame_type="P"))
        return encoded

    def decode_sequence(self, encoded: list[EncodedFrame]) -> list[np.ndarray]:
        frames: list[np.ndarray] = []
        reference: np.ndarray | None = None
        for item in encoded:
            if item.frame_type == "I":
                reference = self._i_codec.decode(item.payload)
            elif reference is None:
                raise ValueError("P-frame before any I-frame")
            else:
                reference = self._decode_p_frame(item.payload, reference)
            frames.append(reference)
        return frames

    def mean_bytes_per_frame(self, frames: list[np.ndarray]) -> float:
        """Average rate over a sequence — the Fig. 2 quantity."""
        encoded = self.encode_sequence(frames)
        if not encoded:
            return 0.0
        return sum(item.num_bytes for item in encoded) / len(encoded)
