"""Lossless codec implementing PNG's core pipeline.

Per scanline, one of the five PNG filters (None, Sub, Up, Average,
Paeth) is chosen by the standard minimum-sum-of-absolute-values
heuristic; the filtered stream is then DEFLATE-compressed.  This is the
mechanism that makes PNG "lossless compressed frames ... at much higher
bitrates" than JPEG in Fig. 2 while preserving every keypoint in Fig. 3.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.codecs.base import Codec

__all__ = ["PngCodec"]

_HEADER = struct.Struct("<cII")

_FILTER_NONE = 0
_FILTER_SUB = 1
_FILTER_UP = 2
_FILTER_AVERAGE = 3
_FILTER_PAETH = 4


def _paeth_predictor(left: np.ndarray, up: np.ndarray, up_left: np.ndarray) -> np.ndarray:
    estimate = left.astype(np.int32) + up.astype(np.int32) - up_left.astype(np.int32)
    d_left = np.abs(estimate - left)
    d_up = np.abs(estimate - up)
    d_up_left = np.abs(estimate - up_left)
    prediction = np.where(
        (d_left <= d_up) & (d_left <= d_up_left),
        left,
        np.where(d_up <= d_up_left, up, up_left),
    )
    return prediction.astype(np.uint8)


class PngCodec(Codec):
    """PNG-core lossless codec (scanline prediction + DEFLATE)."""

    name = "png"
    lossless = True

    def __init__(self, level: int = 6) -> None:
        if not 0 <= level <= 9:
            raise ValueError(f"zlib level must be in 0..9, got {level}")
        self.level = level

    def _filter_rows(self, image: np.ndarray) -> bytes:
        height, width = image.shape
        zero_row = np.zeros(width, dtype=np.uint8)
        out = bytearray()
        previous = zero_row
        for row_index in range(height):
            row = image[row_index]
            left = np.concatenate(([0], row[:-1])).astype(np.uint8)
            up_left = np.concatenate(([0], previous[:-1])).astype(np.uint8)
            candidates = {
                _FILTER_NONE: row,
                _FILTER_SUB: (row.astype(np.int16) - left).astype(np.uint8),
                _FILTER_UP: (row.astype(np.int16) - previous).astype(np.uint8),
                _FILTER_AVERAGE: (
                    row.astype(np.int16)
                    - ((left.astype(np.int16) + previous.astype(np.int16)) // 2)
                ).astype(np.uint8),
                _FILTER_PAETH: (
                    row.astype(np.int16)
                    - _paeth_predictor(left, previous, up_left).astype(np.int16)
                ).astype(np.uint8),
            }
            # Minimum sum of absolute deltas, interpreting bytes as signed.
            best_filter = min(
                candidates,
                key=lambda f: int(
                    np.abs(candidates[f].astype(np.int8).astype(np.int32)).sum()
                ),
            )
            out.append(best_filter)
            out.extend(candidates[best_filter].tobytes())
            previous = row
        return bytes(out)

    def _unfilter_rows(self, filtered: bytes, height: int, width: int) -> np.ndarray:
        image = np.zeros((height, width), dtype=np.uint8)
        stride = width + 1
        previous = np.zeros(width, dtype=np.int32)
        for row_index in range(height):
            offset = row_index * stride
            filter_type = filtered[offset]
            data = np.frombuffer(
                filtered, dtype=np.uint8, count=width, offset=offset + 1
            ).astype(np.int32)
            row = np.zeros(width, dtype=np.int32)
            if filter_type == _FILTER_NONE:
                row = data
            elif filter_type == _FILTER_UP:
                row = (data + previous) & 0xFF
            elif filter_type in (_FILTER_SUB, _FILTER_AVERAGE, _FILTER_PAETH):
                # Sequential along the row; vectorize what we can.
                left = 0
                for col in range(width):
                    up = previous[col]
                    up_left = previous[col - 1] if col > 0 else 0
                    if filter_type == _FILTER_SUB:
                        predictor = left
                    elif filter_type == _FILTER_AVERAGE:
                        predictor = (left + up) // 2
                    else:
                        estimate = left + up - up_left
                        d_left = abs(estimate - left)
                        d_up = abs(estimate - up)
                        d_ul = abs(estimate - up_left)
                        if d_left <= d_up and d_left <= d_ul:
                            predictor = left
                        elif d_up <= d_ul:
                            predictor = up
                        else:
                            predictor = up_left
                    value = (data[col] + predictor) & 0xFF
                    row[col] = value
                    left = value
            else:
                raise ValueError(f"unknown PNG filter type {filter_type}")
            image[row_index] = row.astype(np.uint8)
            previous = row
        return image

    def encode(self, image: np.ndarray) -> bytes:
        image = self._require_uint8(image)
        height, width = image.shape
        body = zlib.compress(self._filter_rows(image), self.level)
        return _HEADER.pack(b"P", height, width) + body

    def decode(self, payload: bytes) -> np.ndarray:
        tag, height, width = _HEADER.unpack_from(payload, 0)
        if tag != b"P":
            raise ValueError("not a PNG-core payload")
        filtered = zlib.decompress(payload[_HEADER.size :])
        return self._unfilter_rows(filtered, height, width)
