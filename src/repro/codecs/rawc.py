"""RAW codec: uncompressed pixels plus a 9-byte shape header."""

from __future__ import annotations

import struct

import numpy as np

from repro.codecs.base import Codec

__all__ = ["RawCodec"]

_HEADER = struct.Struct("<cII")


class RawCodec(Codec):
    """Identity codec; the Fig. 2 upper bound on bytes per frame."""

    name = "raw"
    lossless = True

    def encode(self, image: np.ndarray) -> bytes:
        image = self._require_uint8(image)
        height, width = image.shape
        return _HEADER.pack(b"R", height, width) + image.tobytes()

    def decode(self, payload: bytes) -> np.ndarray:
        tag, height, width = _HEADER.unpack_from(payload, 0)
        if tag != b"R":
            raise ValueError("not a RAW payload")
        pixels = np.frombuffer(
            payload, dtype=np.uint8, count=height * width, offset=_HEADER.size
        )
        return pixels.reshape(height, width).copy()
