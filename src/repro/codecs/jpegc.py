"""Lossy codec implementing JPEG's core pipeline.

8x8 block DCT-II, quantization by the ITU-T T.81 luminance matrix scaled
by a quality factor, zigzag coefficient ordering, and DEFLATE entropy
coding (standing in for Huffman tables; both are entropy coders of the
same coefficient stream, so rate *ordering* across qualities and codecs
is preserved).

Decoding inverts the pipeline, returning the quantization-damaged image.
Feeding decoded frames back through SIFT is exactly the Fig. 3
experiment: "under compression, SIFT feature extraction efficacy drops
substantially".
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
from scipy import fft as scipy_fft

from repro.codecs.base import Codec

__all__ = ["JpegCodec"]

_HEADER = struct.Struct("<cIIB")

# ITU-T T.81 Annex K luminance quantization table.
_BASE_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def _zigzag_order() -> np.ndarray:
    """Indices that traverse an 8x8 block in JPEG zigzag order."""
    order = sorted(
        ((row, col) for row in range(8) for col in range(8)),
        key=lambda rc: (rc[0] + rc[1], rc[1] if (rc[0] + rc[1]) % 2 else rc[0]),
    )
    flat = np.array([row * 8 + col for row, col in order])
    return flat


_ZIGZAG = _zigzag_order()
_UNZIGZAG = np.argsort(_ZIGZAG)


def quality_to_quant_matrix(quality: int) -> np.ndarray:
    """IJG quality scaling of the base quantization matrix."""
    if not 1 <= quality <= 100:
        raise ValueError(f"quality must be in 1..100, got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    matrix = np.floor((_BASE_QUANT * scale + 50.0) / 100.0)
    return np.clip(matrix, 1, 255)


class JpegCodec(Codec):
    """JPEG-core lossy codec (block DCT + quantization + entropy coding)."""

    name = "jpeg"
    lossless = False

    def __init__(self, quality: int = 75, zlib_level: int = 9) -> None:
        self.quality = int(quality)
        self.zlib_level = int(zlib_level)
        self._quant = quality_to_quant_matrix(self.quality)

    @staticmethod
    def _to_blocks(image: np.ndarray) -> tuple[np.ndarray, int, int]:
        """Pad to multiples of 8 and reshape to ``(n_blocks, 8, 8)``."""
        height, width = image.shape
        pad_h = (-height) % 8
        pad_w = (-width) % 8
        padded = np.pad(image, ((0, pad_h), (0, pad_w)), mode="edge")
        ph, pw = padded.shape
        blocks = padded.reshape(ph // 8, 8, pw // 8, 8).transpose(0, 2, 1, 3)
        return blocks.reshape(-1, 8, 8), ph, pw

    @staticmethod
    def _from_blocks(blocks: np.ndarray, ph: int, pw: int, height: int, width: int) -> np.ndarray:
        grid = blocks.reshape(ph // 8, pw // 8, 8, 8).transpose(0, 2, 1, 3)
        return grid.reshape(ph, pw)[:height, :width]

    def quantize_blocks(self, image: np.ndarray) -> tuple[np.ndarray, int, int]:
        """DCT + quantize; returns int16 coefficients ``(n, 64)`` zigzagged."""
        blocks, ph, pw = self._to_blocks(image.astype(np.float64) - 128.0)
        coefficients = scipy_fft.dctn(blocks, axes=(1, 2), norm="ortho")
        quantized = np.rint(coefficients / self._quant).astype(np.int16)
        zigzagged = quantized.reshape(-1, 64)[:, _ZIGZAG]
        return zigzagged, ph, pw

    def dequantize_blocks(
        self, zigzagged: np.ndarray, ph: int, pw: int, height: int, width: int
    ) -> np.ndarray:
        """Inverse of :meth:`quantize_blocks` back to a uint8 image."""
        quantized = zigzagged[:, _UNZIGZAG].reshape(-1, 8, 8).astype(np.float64)
        coefficients = quantized * self._quant
        blocks = scipy_fft.idctn(coefficients, axes=(1, 2), norm="ortho")
        image = self._from_blocks(blocks, ph, pw, height, width) + 128.0
        return np.clip(np.rint(image), 0, 255).astype(np.uint8)

    def encode(self, image: np.ndarray) -> bytes:
        image = self._require_uint8(image)
        height, width = image.shape
        zigzagged, _, _ = self.quantize_blocks(image)
        # DC coefficients are delta-coded across blocks (as in JPEG).
        stream = zigzagged.copy()
        stream[1:, 0] = np.diff(zigzagged[:, 0])
        body = zlib.compress(stream.astype("<i2").tobytes(), self.zlib_level)
        return _HEADER.pack(b"J", height, width, self.quality) + body

    def decode(self, payload: bytes) -> np.ndarray:
        tag, height, width, quality = _HEADER.unpack_from(payload, 0)
        if tag != b"J":
            raise ValueError("not a JPEG-core payload")
        if quality != self.quality:
            # Decode with the stream's own quality tables.
            codec = JpegCodec(quality=quality, zlib_level=self.zlib_level)
            return codec.decode(payload)
        raw = zlib.decompress(payload[_HEADER.size :])
        stream = np.frombuffer(raw, dtype="<i2").reshape(-1, 64).astype(np.int16)
        zigzagged = stream.copy()
        zigzagged[:, 0] = np.cumsum(stream[:, 0])
        ph = (height + 7) // 8 * 8
        pw = (width + 7) // 8 * 8
        return self.dequantize_blocks(zigzagged, ph, pw, height, width)
