"""Codec interfaces.

Still codecs map one uint8 grayscale image to bytes and back.  Video
codecs are stateful across a frame sequence (inter-frame prediction), so
they expose an explicit session via :meth:`VideoCodec.encode_sequence`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = ["Codec", "EncodedFrame", "VideoCodec"]


@dataclass(frozen=True)
class EncodedFrame:
    """One encoded frame: payload plus bookkeeping for rate accounting."""

    payload: bytes
    frame_type: str  # "I" or "P" (stills are always "I")

    @property
    def num_bytes(self) -> int:
        return len(self.payload)


class Codec(ABC):
    """A still-image codec over uint8 grayscale images."""

    name: str = "codec"
    lossless: bool = False

    @abstractmethod
    def encode(self, image: np.ndarray) -> bytes:
        """Compress a uint8 grayscale image to bytes."""

    @abstractmethod
    def decode(self, payload: bytes) -> np.ndarray:
        """Reconstruct the (possibly degraded) uint8 image."""

    def roundtrip(self, image: np.ndarray) -> tuple[bytes, np.ndarray]:
        """Encode then decode; convenience for degradation experiments."""
        payload = self.encode(image)
        return payload, self.decode(payload)

    @staticmethod
    def _require_uint8(image: np.ndarray) -> np.ndarray:
        image = np.asarray(image)
        if image.dtype != np.uint8:
            raise ValueError(f"codec input must be uint8, got {image.dtype}")
        if image.ndim != 2:
            raise ValueError(f"codec input must be 2-D grayscale, got {image.shape}")
        return image


class VideoCodec(ABC):
    """A codec with inter-frame state."""

    name: str = "video"

    @abstractmethod
    def encode_sequence(self, frames: list[np.ndarray]) -> list[EncodedFrame]:
        """Encode an ordered frame sequence."""

    @abstractmethod
    def decode_sequence(self, encoded: list[EncodedFrame]) -> list[np.ndarray]:
        """Reconstruct all frames of a sequence."""
