"""Serialization of counting Bloom filters for client download.

The client downloads the oracle "approximately 10MB" GZIP-compressed; the
filters are fixed size but "compressibility reduces as the Bloom filter
becomes more saturated".  This module provides the on-the-wire snapshot
format (a small header plus the bit-packed counters) used to measure and
reproduce exactly that effect.
"""

from __future__ import annotations

import gzip
import json
import struct
from dataclasses import dataclass

from repro.bloom.counting import CountingBloomFilter
from repro.bloom.verification import VerificationBloomFilter

__all__ = [
    "BloomSnapshot",
    "DEFAULT_GZIP_LEVEL",
    "serialize_counting",
    "serialize_verification",
    "deserialize_counting",
]

_MAGIC = b"VPBF"
_VERIFICATION_MAGIC = b"VPVF"
_VERSION = 1

#: The container's one compression knob; every snapshot producer routes
#: through it so download-size accounting never mixes GZIP levels.
DEFAULT_GZIP_LEVEL = 6


@dataclass(frozen=True)
class BloomSnapshot:
    """A serialized counting Bloom filter plus its transfer statistics."""

    payload: bytes
    raw_bytes: int
    compressed_bytes: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.compressed_bytes


def serialize_counting(
    bloom: CountingBloomFilter, gzip_level: int = DEFAULT_GZIP_LEVEL
) -> BloomSnapshot:
    """Serialize ``bloom`` to a GZIP-compressed snapshot."""
    header = json.dumps(
        {
            "num_counters": bloom.num_counters,
            "num_hashes": bloom.num_hashes,
            "bits_per_counter": bloom.bits_per_counter,
        }
    ).encode("utf-8")
    body = bloom.packed_bytes()
    raw = _MAGIC + struct.pack("<BI", _VERSION, len(header)) + header + body
    compressed = gzip.compress(raw, compresslevel=gzip_level)
    return BloomSnapshot(
        payload=compressed, raw_bytes=len(raw), compressed_bytes=len(compressed)
    )


def serialize_verification(
    bloom: VerificationBloomFilter, gzip_level: int = DEFAULT_GZIP_LEVEL
) -> BloomSnapshot:
    """Serialize a verification filter to a GZIP-compressed snapshot.

    Same wire shape as :func:`serialize_counting` (magic + version +
    JSON header + packed bits) so download accounting treats both
    filters uniformly.
    """
    header = json.dumps(
        {"num_bits": bloom.num_bits, "num_hashes": bloom.num_hashes}
    ).encode("utf-8")
    body = bloom.packed_bytes()
    raw = _VERIFICATION_MAGIC + struct.pack("<BI", _VERSION, len(header)) + header + body
    compressed = gzip.compress(raw, compresslevel=gzip_level)
    return BloomSnapshot(
        payload=compressed, raw_bytes=len(raw), compressed_bytes=len(compressed)
    )


def deserialize_counting(snapshot: BloomSnapshot | bytes) -> CountingBloomFilter:
    """Rebuild a counting Bloom filter from a snapshot (or raw payload)."""
    payload = snapshot.payload if isinstance(snapshot, BloomSnapshot) else snapshot
    raw = gzip.decompress(payload)
    if raw[:4] != _MAGIC:
        raise ValueError("not a VisualPrint Bloom snapshot (bad magic)")
    version, header_len = struct.unpack_from("<BI", raw, 4)
    if version != _VERSION:
        raise ValueError(f"unsupported snapshot version {version}")
    header_start = 4 + struct.calcsize("<BI")
    header = json.loads(raw[header_start : header_start + header_len])
    body = raw[header_start + header_len :]
    return CountingBloomFilter.from_packed_bytes(
        body,
        num_counters=header["num_counters"],
        num_hashes=header["num_hashes"],
        bits_per_counter=header["bits_per_counter"],
    )
