"""Serialization of counting Bloom filters for client download.

The client downloads the oracle "approximately 10MB" GZIP-compressed; the
filters are fixed size but "compressibility reduces as the Bloom filter
becomes more saturated".  This module provides the on-the-wire snapshot
format (a small header plus the bit-packed counters) used to measure and
reproduce exactly that effect.

Deserialization is *defensive*: a snapshot whose header disagrees with
its body (wrong magic, impossible geometry, or a body length that does
not match ``num_counters`` x ``bits_per_counter``) raises
:class:`SnapshotCorruptError` instead of silently mis-shaping counters.
A bit-flipped counting filter inverts uniqueness decisions without any
visible failure, which is strictly worse than a refused download — see
``repro.store`` for the full integrity ladder built on these checks.
"""

from __future__ import annotations

import gzip
import json
import struct
import zlib
from dataclasses import dataclass

from repro.bloom.counting import CountingBloomFilter
from repro.bloom.verification import VerificationBloomFilter

__all__ = [
    "BloomSnapshot",
    "DEFAULT_GZIP_LEVEL",
    "SnapshotCorruptError",
    "serialize_counting",
    "serialize_verification",
    "deserialize_counting",
    "deserialize_verification",
]

_MAGIC = b"VPBF"
_VERIFICATION_MAGIC = b"VPVF"
_VERSION = 1

#: The container's one compression knob; every snapshot producer routes
#: through it so download-size accounting never mixes GZIP levels.
DEFAULT_GZIP_LEVEL = 6


class SnapshotCorruptError(ValueError):
    """A serialized snapshot failed an integrity or consistency check.

    Subclasses :class:`ValueError` so callers that predate the explicit
    corruption taxonomy (``except ValueError``) keep catching it.
    """


@dataclass(frozen=True)
class BloomSnapshot:
    """A serialized counting Bloom filter plus its transfer statistics."""

    payload: bytes
    raw_bytes: int
    compressed_bytes: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return float("inf")
        return self.raw_bytes / self.compressed_bytes


def serialize_counting(
    bloom: CountingBloomFilter, gzip_level: int = DEFAULT_GZIP_LEVEL
) -> BloomSnapshot:
    """Serialize ``bloom`` to a GZIP-compressed snapshot."""
    header = json.dumps(
        {
            "num_counters": bloom.num_counters,
            "num_hashes": bloom.num_hashes,
            "bits_per_counter": bloom.bits_per_counter,
        }
    ).encode("utf-8")
    body = bloom.packed_bytes()
    raw = _MAGIC + struct.pack("<BI", _VERSION, len(header)) + header + body
    compressed = gzip.compress(raw, compresslevel=gzip_level)
    return BloomSnapshot(
        payload=compressed, raw_bytes=len(raw), compressed_bytes=len(compressed)
    )


def serialize_verification(
    bloom: VerificationBloomFilter, gzip_level: int = DEFAULT_GZIP_LEVEL
) -> BloomSnapshot:
    """Serialize a verification filter to a GZIP-compressed snapshot.

    Same wire shape as :func:`serialize_counting` (magic + version +
    JSON header + packed bits) so download accounting treats both
    filters uniformly.
    """
    header = json.dumps(
        {"num_bits": bloom.num_bits, "num_hashes": bloom.num_hashes}
    ).encode("utf-8")
    body = bloom.packed_bytes()
    raw = _VERIFICATION_MAGIC + struct.pack("<BI", _VERSION, len(header)) + header + body
    compressed = gzip.compress(raw, compresslevel=gzip_level)
    return BloomSnapshot(
        payload=compressed, raw_bytes=len(raw), compressed_bytes=len(compressed)
    )


def _decompress(payload: bytes) -> bytes:
    """GZIP-decompress, mapping stream damage to :class:`SnapshotCorruptError`.

    GZIP carries its own CRC32, so most bit flips and truncations die
    here with a zlib error rather than reaching the header checks.
    """
    try:
        return gzip.decompress(payload)
    except (OSError, EOFError, zlib.error) as error:
        raise SnapshotCorruptError(f"snapshot payload is not valid GZIP: {error}")


def _parse_container(
    payload: bytes, magic: bytes, kind: str
) -> tuple[dict, bytes]:
    """Shared header validation for both snapshot formats.

    Returns ``(header, body)`` or raises :class:`SnapshotCorruptError`
    on bad magic, unsupported version, a header length pointing past the
    payload, or an unparseable header.
    """
    raw = _decompress(payload)
    if len(raw) < 4 + struct.calcsize("<BI"):
        raise SnapshotCorruptError(
            f"{kind} snapshot truncated before its header ({len(raw)} bytes)"
        )
    if raw[:4] != magic:
        raise SnapshotCorruptError(
            f"not a VisualPrint {kind} snapshot (bad magic)"
        )
    version, header_len = struct.unpack_from("<BI", raw, 4)
    if version != _VERSION:
        raise SnapshotCorruptError(f"unsupported snapshot version {version}")
    header_start = 4 + struct.calcsize("<BI")
    if header_start + header_len > len(raw):
        raise SnapshotCorruptError(
            f"{kind} snapshot header claims {header_len} bytes but only "
            f"{len(raw) - header_start} remain"
        )
    try:
        header = json.loads(raw[header_start : header_start + header_len])
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SnapshotCorruptError(f"{kind} snapshot header unparseable: {error}")
    if not isinstance(header, dict):
        raise SnapshotCorruptError(f"{kind} snapshot header is not an object")
    return header, raw[header_start + header_len :]


def _header_int(header: dict, field: str, kind: str) -> int:
    value = header.get(field)
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise SnapshotCorruptError(
            f"{kind} snapshot header field {field!r} must be a positive "
            f"integer, got {value!r}"
        )
    return value


def deserialize_counting(snapshot: BloomSnapshot | bytes) -> CountingBloomFilter:
    """Rebuild a counting Bloom filter from a snapshot (or raw payload).

    The header and body must agree: a body whose length differs from
    ``ceil(num_counters * bits_per_counter / 8)`` is refused with
    :class:`SnapshotCorruptError` — accepting it would silently mis-shape
    the counters into a filter that answers queries *wrong*, not loudly.
    """
    payload = snapshot.payload if isinstance(snapshot, BloomSnapshot) else snapshot
    header, body = _parse_container(payload, _MAGIC, "counting")
    num_counters = _header_int(header, "num_counters", "counting")
    num_hashes = _header_int(header, "num_hashes", "counting")
    bits_per_counter = _header_int(header, "bits_per_counter", "counting")
    if bits_per_counter > 16:
        raise SnapshotCorruptError(
            f"counting snapshot claims {bits_per_counter}-bit counters (max 16)"
        )
    expected = (num_counters * bits_per_counter + 7) // 8
    if len(body) != expected:
        raise SnapshotCorruptError(
            f"counting snapshot body is {len(body)} bytes but the header "
            f"({num_counters} counters x {bits_per_counter} bits) requires "
            f"{expected}"
        )
    return CountingBloomFilter.from_packed_bytes(
        body,
        num_counters=num_counters,
        num_hashes=num_hashes,
        bits_per_counter=bits_per_counter,
    )


def deserialize_verification(
    snapshot: BloomSnapshot | bytes, seed: int = 9001
) -> VerificationBloomFilter:
    """Rebuild a verification filter from :func:`serialize_verification` output.

    Counterpart to :func:`deserialize_counting`, with the same header
    validation and header/body length consistency check.  The hash seed
    is not on the wire (matching the counting format), so callers
    restoring a non-default filter pass ``seed`` explicitly.
    """
    payload = snapshot.payload if isinstance(snapshot, BloomSnapshot) else snapshot
    header, body = _parse_container(payload, _VERIFICATION_MAGIC, "verification")
    num_bits = _header_int(header, "num_bits", "verification")
    num_hashes = _header_int(header, "num_hashes", "verification")
    expected = (num_bits + 7) // 8
    if len(body) != expected:
        raise SnapshotCorruptError(
            f"verification snapshot body is {len(body)} bytes but the header "
            f"({num_bits} bits) requires {expected}"
        )
    bloom = VerificationBloomFilter(
        num_bits=num_bits, num_hashes=num_hashes, seed=seed
    )
    bloom.load_packed_bytes(body)
    return bloom
