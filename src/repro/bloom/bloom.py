"""Classic (binary) Bloom filter over integer vectors.

Elements are fixed-length integer vectors — in VisualPrint these are the
quantized LSH bucket vectors of SIFT descriptors.  Hashing is MurmurHash3
via a :class:`repro.hashing.HashFamily`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.hashing import HashFamily, Murmur3Family
from repro.util.validation import check_positive, check_probability

__all__ = ["BloomFilter", "optimal_num_bits", "optimal_num_hashes"]


def optimal_num_bits(capacity: int, false_positive_rate: float) -> int:
    """Bits needed to hold ``capacity`` elements at the target FP rate.

    Standard sizing formula ``m = -n ln(p) / (ln 2)^2``.  The paper tunes
    its filters "to support up to 2.5M unique feature vectors with less
    than 1% false positives".
    """
    check_positive("capacity", capacity)
    check_probability("false_positive_rate", false_positive_rate)
    if false_positive_rate in (0.0, 1.0):
        raise ValueError("false_positive_rate must be strictly inside (0, 1)")
    return max(1, math.ceil(-capacity * math.log(false_positive_rate) / math.log(2) ** 2))


def optimal_num_hashes(num_bits: int, capacity: int) -> int:
    """Optimal hash count ``k = (m / n) ln 2`` for the sizing above."""
    check_positive("num_bits", num_bits)
    check_positive("capacity", capacity)
    return max(1, round(num_bits / capacity * math.log(2)))


class BloomFilter:
    """Binary Bloom filter supporting batched add/contains.

    >>> bloom = BloomFilter(num_bits=1 << 12, num_hashes=4)
    >>> bloom.add(np.array([[1, 2, 3]]))
    >>> bool(bloom.contains(np.array([[1, 2, 3]]))[0])
    True
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int,
        hash_family: HashFamily | None = None,
        seed: int = 0,
    ) -> None:
        check_positive("num_bits", num_bits)
        check_positive("num_hashes", num_hashes)
        self.num_bits = int(num_bits)
        self.num_hashes = int(num_hashes)
        self.bits = np.zeros(self.num_bits, dtype=bool)
        self._family = hash_family or Murmur3Family(
            num_hashes=self.num_hashes, table_size=self.num_bits, base_seed=seed
        )
        if self._family.num_hashes != self.num_hashes:
            raise ValueError("hash_family num_hashes must match num_hashes")
        if self._family.table_size != self.num_bits:
            raise ValueError("hash_family table_size must match num_bits")
        self._inserted = 0

    @classmethod
    def with_capacity(
        cls, capacity: int, false_positive_rate: float = 0.01, seed: int = 0
    ) -> "BloomFilter":
        """Construct a filter sized for ``capacity`` elements at the FP rate."""
        num_bits = optimal_num_bits(capacity, false_positive_rate)
        num_hashes = optimal_num_hashes(num_bits, capacity)
        return cls(num_bits=num_bits, num_hashes=num_hashes, seed=seed)

    @property
    def inserted_count(self) -> int:
        """Number of add operations performed (not distinct elements)."""
        return self._inserted

    @property
    def fill_fraction(self) -> float:
        """Fraction of bits currently set."""
        return float(self.bits.mean())

    def indices(self, vectors: np.ndarray) -> np.ndarray:
        """Expose hash indices (used by the verification filter)."""
        return self._family.indices(vectors)

    def add(self, vectors: np.ndarray) -> None:
        """Insert each row of ``vectors`` into the filter."""
        indices = self._family.indices(vectors)
        self.bits[indices.ravel()] = True
        self._inserted += vectors.shape[0]

    def contains(self, vectors: np.ndarray) -> np.ndarray:
        """Probabilistic membership test for each row; shape ``(n,)`` bool."""
        indices = self._family.indices(vectors)
        return self.bits[indices].all(axis=1)

    def estimated_false_positive_rate(self) -> float:
        """FP estimate from the current fill fraction: ``fill ** k``."""
        return float(self.fill_fraction**self.num_hashes)

    def storage_bits(self) -> int:
        """Logical storage footprint in bits (1 bit per position)."""
        return self.num_bits
