"""Bloom filters: classic, counting (with saturation), and verification.

These are the probabilistic building blocks of VisualPrint's uniqueness
oracle.  The counting variant accumulates how often a quantized keypoint
has been inserted (saturating at 2**bits_per_counter - 1, the paper uses
10-bit counters saturating at 1023); the verification filter hashes the
*bit positions* of each primary insertion to suppress false positives
introduced by multiprobe lookups.
"""

from repro.bloom.bloom import BloomFilter, optimal_num_bits, optimal_num_hashes
from repro.bloom.container import (
    DEFAULT_GZIP_LEVEL,
    BloomSnapshot,
    SnapshotCorruptError,
    deserialize_counting,
    deserialize_verification,
    serialize_counting,
    serialize_verification,
)
from repro.bloom.counting import CountingBloomFilter
from repro.bloom.verification import VerificationBloomFilter

__all__ = [
    "DEFAULT_GZIP_LEVEL",
    "BloomFilter",
    "BloomSnapshot",
    "CountingBloomFilter",
    "SnapshotCorruptError",
    "VerificationBloomFilter",
    "deserialize_counting",
    "deserialize_verification",
    "optimal_num_bits",
    "optimal_num_hashes",
    "serialize_counting",
    "serialize_verification",
]
