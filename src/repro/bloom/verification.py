"""Verification Bloom filter (false-positive suppression).

For each insertion into the primary counting filter, the paper performs a
second insertion into a plain Bloom filter — but "instead of hashing the
original data, we hash the bit positions of the insertions to the primary
Bloom filter".  A query passes only if both filters accept it.  This
guards against primary-filter hotspots caused by coarse LSH quantization,
and becomes "all the more crucial" once multiprobe lookups are enabled.
"""

from __future__ import annotations

import numpy as np

from repro.bloom.bloom import BloomFilter
from repro.util.validation import check_positive

__all__ = ["VerificationBloomFilter"]


class VerificationBloomFilter:
    """Bloom filter keyed on the *primary-filter index tuple* of an element."""

    def __init__(self, num_bits: int, num_hashes: int = 4, seed: int = 9001) -> None:
        check_positive("num_bits", num_bits)
        self._bloom = BloomFilter(num_bits=num_bits, num_hashes=num_hashes, seed=seed)

    @property
    def num_bits(self) -> int:
        return self._bloom.num_bits

    @property
    def num_hashes(self) -> int:
        return self._bloom.num_hashes

    @property
    def fill_fraction(self) -> float:
        return self._bloom.fill_fraction

    @staticmethod
    def _as_vectors(primary_indices: np.ndarray) -> np.ndarray:
        indices = np.asarray(primary_indices)
        if indices.ndim != 2:
            raise ValueError(
                f"primary_indices must be (n, K), got shape {indices.shape}"
            )
        # Hashing concat(bitPositions): sort so the tuple is canonical even
        # if a hash family returns positions in a different order.
        canonical = np.sort(indices, axis=1)
        return canonical.astype(np.uint32)

    def add(self, primary_indices: np.ndarray) -> None:
        """Record the primary-filter positions touched by each insertion."""
        self._bloom.add(self._as_vectors(primary_indices))

    def verify(self, primary_indices: np.ndarray) -> np.ndarray:
        """True where the position tuple was actually inserted before."""
        return self._bloom.contains(self._as_vectors(primary_indices))

    def storage_bits(self) -> int:
        return self._bloom.storage_bits()

    def storage_bytes(self) -> int:
        return (self.storage_bits() + 7) // 8

    def packed_bytes(self) -> bytes:
        """Bit-packed filter contents for serialization."""
        return np.packbits(self._bloom.bits).tobytes()

    def load_packed_bytes(self, payload: bytes) -> None:
        """Restore filter contents from :meth:`packed_bytes` output."""
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        self._bloom.bits = bits[: self._bloom.num_bits].astype(bool)
