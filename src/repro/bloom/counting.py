"""Counting Bloom filter with a saturation point.

VisualPrint's uniqueness oracle stores 10-bit counters ("for a count
saturation of 1024"; counters stop at 2**10 - 1 = 1023 and "beyond 1024,
we treat a keypoint as not unique enough for consideration").  Queries
return the *minimum* counter across the K probed positions — the standard
count estimate for counting Bloom filters, which can only over-estimate.

Storage is bit-packed: ``64 // bits_per_counter`` counters share one
``uint64`` word (six 10-bit counters per word at the default width), so
the resident array is within one word of the logical
``storage_bits()`` footprint instead of a 16-bit slot per counter.  The
hot-path :meth:`gather` extracts probed counters straight from the words
(index → word, shift, mask — all vectorized), which moves ~40% less
memory per probe than the uint16 layout and keeps more of the filter in
cache.  The :attr:`counters` property still reads/writes the logical
uint16 view for snapshots, diffs, and tests.
"""

from __future__ import annotations

import numpy as np

from repro.hashing import HashFamily, Murmur3Family
from repro.util.validation import check_in_range, check_positive

__all__ = ["CountingBloomFilter"]


class CountingBloomFilter:
    """Saturating counting Bloom filter over integer vectors.

    >>> cbf = CountingBloomFilter(num_counters=1 << 12, num_hashes=4)
    >>> element = np.array([[7, 8, 9]])
    >>> for _ in range(3):
    ...     cbf.add(element)
    >>> int(cbf.count(element)[0])
    3
    """

    def __init__(
        self,
        num_counters: int,
        num_hashes: int,
        bits_per_counter: int = 10,
        hash_family: HashFamily | None = None,
        seed: int = 0,
    ) -> None:
        check_positive("num_counters", num_counters)
        check_positive("num_hashes", num_hashes)
        check_in_range("bits_per_counter", bits_per_counter, 1, 16)
        self.num_counters = int(num_counters)
        self.num_hashes = int(num_hashes)
        self.bits_per_counter = int(bits_per_counter)
        self.saturation = (1 << self.bits_per_counter) - 1
        self._slots_per_word = 64 // self.bits_per_counter
        self._mask = np.uint64(self.saturation)
        num_words = -(-self.num_counters // self._slots_per_word)
        self._words = np.zeros(num_words, dtype=np.uint64)
        self._family = hash_family or Murmur3Family(
            num_hashes=self.num_hashes, table_size=self.num_counters, base_seed=seed
        )
        if self._family.num_hashes != self.num_hashes:
            raise ValueError("hash_family num_hashes must match num_hashes")
        if self._family.table_size != self.num_counters:
            raise ValueError("hash_family table_size must match num_counters")
        self._inserted = 0

    @property
    def inserted_count(self) -> int:
        return self._inserted

    @property
    def hash_seed(self) -> int:
        """The hash family's base seed — part of the filter's identity.

        Two filters with equal geometry but different seeds map the same
        element to different counters, so deltas and snapshots must
        carry (and check) this value.  Custom families without a
        ``base_seed`` report 0.
        """
        return int(getattr(self._family, "base_seed", 0))

    # ------------------------------------------------------------------
    # Packed storage
    # ------------------------------------------------------------------

    @property
    def packed_words(self) -> np.ndarray:
        """The resident ``uint64`` word array (read-only hot storage)."""
        return self._words

    @property
    def counters(self) -> np.ndarray:
        """Logical counter array as uint16 (an unpacked *copy*).

        Reads materialize the full array — fine for snapshots, diffs,
        and assertions, wrong for per-probe hot paths (use
        :meth:`gather` / :meth:`count_from_indices` there).  In-place
        element writes on the returned array do NOT stick; assign a
        whole array back, or use :meth:`set_at` for sparse updates.
        """
        slots = self._slots_per_word
        shifts = (
            np.arange(slots, dtype=np.uint64) * np.uint64(self.bits_per_counter)
        )
        values = (self._words[:, None] >> shifts[None, :]) & self._mask
        return values.reshape(-1)[: self.num_counters].astype(np.uint16)

    @counters.setter
    def counters(self, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.shape != (self.num_counters,):
            raise ValueError(
                f"counters must have shape ({self.num_counters},), got {values.shape}"
            )
        slots = self._slots_per_word
        shifts = (
            np.arange(slots, dtype=np.uint64) * np.uint64(self.bits_per_counter)
        )
        padded = np.zeros(self._words.shape[0] * slots, dtype=np.uint64)
        padded[: self.num_counters] = values.astype(np.uint64) & self._mask
        shifted = padded.reshape(-1, slots) << shifts[None, :]
        self._words = np.bitwise_or.reduce(shifted, axis=1)

    def gather(self, indices: np.ndarray) -> np.ndarray:
        """Counter values at ``indices`` (any int shape), extracted packed.

        The per-probe hot path: one word gather plus a vectorized
        shift-and-mask, no unpacking of the full array.  Returns int64
        with the input's shape.
        """
        indices = np.asarray(indices, dtype=np.int64)
        words = self._words[indices // self._slots_per_word]
        shifts = (
            (indices % self._slots_per_word).astype(np.uint64)
            * np.uint64(self.bits_per_counter)
        )
        return ((words >> shifts) & self._mask).astype(np.int64)

    def set_at(self, indices: np.ndarray, values: np.ndarray) -> None:
        """Sparse counter assignment (``counters[indices] = values``).

        Duplicate indices keep the *last* value, matching plain fancy
        assignment on an unpacked array.  Values are masked to
        ``bits_per_counter`` bits.
        """
        indices = np.asarray(indices, dtype=np.int64).ravel()
        values = (np.asarray(values).astype(np.uint64) & self._mask).ravel()
        if indices.shape != values.shape:
            raise ValueError(
                f"indices and values must match, got {indices.shape} vs {values.shape}"
            )
        if indices.size == 0:
            return
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_counters):
            raise IndexError("counter index out of range")
        if indices.size == 1 or np.all(indices[1:] > indices[:-1]):
            # Strictly increasing (the bump_counters path) — already unique.
            unique, kept_values = indices, values
        else:
            unique, reversed_first = np.unique(indices[::-1], return_index=True)
            kept_values = values[::-1][reversed_first]
        slots = unique % self._slots_per_word
        word_index = unique // self._slots_per_word
        bits = np.uint64(self.bits_per_counter)
        for slot in range(self._slots_per_word):
            in_slot = slots == slot
            if not in_slot.any():
                continue
            shift = np.uint64(slot) * bits
            targets = word_index[in_slot]
            keep_mask = ~(self._mask << shift)
            self._words[targets] = (self._words[targets] & keep_mask) | (
                kept_values[in_slot] << shift
            )

    def bump_counters(self, flat_indices: np.ndarray) -> None:
        """Increment counters at ``flat_indices`` (with multiplicity), saturating.

        The ingest inner loop: duplicate indices within the batch
        accumulate (one index appearing three times adds three), and
        every counter stops at :attr:`saturation`.  Does not change
        :attr:`inserted_count`; callers tracking element counts (the
        oracle) do that themselves.
        """
        flat = np.asarray(flat_indices, dtype=np.int64).ravel()
        if flat.size == 0:
            return
        increments = np.bincount(flat, minlength=self.num_counters)
        touched = np.flatnonzero(increments)
        bumped = np.minimum(
            self.gather(touched) + increments[touched], self.saturation
        )
        self.set_at(touched, bumped)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def indices(self, vectors: np.ndarray) -> np.ndarray:
        """Hash indices for each row (needed by the verification filter)."""
        return self._family.indices(vectors)

    def add(self, vectors: np.ndarray) -> np.ndarray:
        """Insert each row; returns the ``(n, K)`` indices that were bumped.

        Counters saturate instead of wrapping.  Duplicate rows within one
        batch accumulate correctly.
        """
        indices = self._family.indices(vectors)
        self.bump_counters(indices.ravel())
        self._inserted += vectors.shape[0]
        return indices

    def count(self, vectors: np.ndarray) -> np.ndarray:
        """Minimum-counter estimate of each row's insertion count."""
        indices = self._family.indices(vectors)
        return self.count_from_indices(indices)

    def count_from_indices(self, indices: np.ndarray) -> np.ndarray:
        """Count estimate from precomputed ``(n, K)`` indices."""
        return self.gather(indices).min(axis=1)

    def contains(self, vectors: np.ndarray) -> np.ndarray:
        """Membership: every probed counter non-zero."""
        return self.count(vectors) > 0

    def is_saturated(self, vectors: np.ndarray) -> np.ndarray:
        """True where the count estimate has hit the saturation ceiling."""
        return self.count(vectors) >= self.saturation

    def _slot_value_fraction(self, predicate) -> float:
        """Fraction of logical counters whose value satisfies ``predicate``.

        Walks the packed words slot-lane by slot-lane (``slots_per_word``
        vectorized passes) instead of unpacking the whole array; the
        tail word's unused slots are always zero and are excluded by
        construction (every lane's logical length is known).
        """
        bits = np.uint64(self.bits_per_counter)
        matched = 0
        for slot in range(self._slots_per_word):
            lane = (self._words >> (np.uint64(slot) * bits)) & self._mask
            # Logical counters living in this slot lane: indices
            # slot, slot + S, slot + 2S, ... below num_counters.
            lane_length = max(
                0, (self.num_counters - slot - 1) // self._slots_per_word + 1
            )
            matched += int(predicate(lane[:lane_length]).sum())
        return matched / self.num_counters

    @property
    def fill_fraction(self) -> float:
        """Fraction of non-zero counters."""
        return self._slot_value_fraction(lambda lane: lane > 0)

    def saturated_fraction(self) -> float:
        """Fraction of counters pinned at the saturation ceiling."""
        return self._slot_value_fraction(lambda lane: lane == self._mask)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def storage_bits(self) -> int:
        """Logical footprint: ``bits_per_counter`` bits per counter."""
        return self.num_counters * self.bits_per_counter

    def storage_bytes(self) -> int:
        """Logical footprint in bytes (rounded up)."""
        return (self.storage_bits() + 7) // 8

    def resident_bytes(self) -> int:
        """Actual in-memory footprint of the packed word array."""
        return int(self._words.nbytes)

    def packed_bytes(self) -> bytes:
        """Bit-packed counter array (``bits_per_counter`` bits each).

        This is the representation whose GZIP-compressed size the client
        downloads.  The wire layout (big-endian bit order, no word
        padding) predates the packed in-memory words and is preserved
        exactly; snapshots from older builds round-trip bit for bit.
        """
        bits = np.unpackbits(
            self.counters.astype(">u2").view(np.uint8).reshape(-1, 2), axis=1
        )
        kept = bits[:, 16 - self.bits_per_counter :]
        return np.packbits(kept.ravel()).tobytes()

    @classmethod
    def from_packed_bytes(
        cls,
        payload: bytes,
        num_counters: int,
        num_hashes: int,
        bits_per_counter: int = 10,
        seed: int = 0,
    ) -> "CountingBloomFilter":
        """Rebuild a filter from :meth:`packed_bytes` output."""
        out = cls(
            num_counters=num_counters,
            num_hashes=num_hashes,
            bits_per_counter=bits_per_counter,
            seed=seed,
        )
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        bits = bits[: num_counters * bits_per_counter].reshape(
            num_counters, bits_per_counter
        )
        weights = (1 << np.arange(bits_per_counter - 1, -1, -1)).astype(np.uint32)
        out.counters = (bits * weights).sum(axis=1).astype(np.uint16)
        return out
