"""Counting Bloom filter with a saturation point.

VisualPrint's uniqueness oracle stores 10-bit counters ("for a count
saturation of 1024"; counters stop at 2**10 - 1 = 1023 and "beyond 1024,
we treat a keypoint as not unique enough for consideration").  Queries
return the *minimum* counter across the K probed positions — the standard
count estimate for counting Bloom filters, which can only over-estimate.
"""

from __future__ import annotations

import numpy as np

from repro.hashing import HashFamily, Murmur3Family
from repro.util.validation import check_in_range, check_positive

__all__ = ["CountingBloomFilter"]


class CountingBloomFilter:
    """Saturating counting Bloom filter over integer vectors.

    >>> cbf = CountingBloomFilter(num_counters=1 << 12, num_hashes=4)
    >>> element = np.array([[7, 8, 9]])
    >>> for _ in range(3):
    ...     cbf.add(element)
    >>> int(cbf.count(element)[0])
    3
    """

    def __init__(
        self,
        num_counters: int,
        num_hashes: int,
        bits_per_counter: int = 10,
        hash_family: HashFamily | None = None,
        seed: int = 0,
    ) -> None:
        check_positive("num_counters", num_counters)
        check_positive("num_hashes", num_hashes)
        check_in_range("bits_per_counter", bits_per_counter, 1, 16)
        self.num_counters = int(num_counters)
        self.num_hashes = int(num_hashes)
        self.bits_per_counter = int(bits_per_counter)
        self.saturation = (1 << self.bits_per_counter) - 1
        self.counters = np.zeros(self.num_counters, dtype=np.uint16)
        self._family = hash_family or Murmur3Family(
            num_hashes=self.num_hashes, table_size=self.num_counters, base_seed=seed
        )
        if self._family.num_hashes != self.num_hashes:
            raise ValueError("hash_family num_hashes must match num_hashes")
        if self._family.table_size != self.num_counters:
            raise ValueError("hash_family table_size must match num_counters")
        self._inserted = 0

    @property
    def inserted_count(self) -> int:
        return self._inserted

    @property
    def hash_seed(self) -> int:
        """The hash family's base seed — part of the filter's identity.

        Two filters with equal geometry but different seeds map the same
        element to different counters, so deltas and snapshots must
        carry (and check) this value.  Custom families without a
        ``base_seed`` report 0.
        """
        return int(getattr(self._family, "base_seed", 0))

    def indices(self, vectors: np.ndarray) -> np.ndarray:
        """Hash indices for each row (needed by the verification filter)."""
        return self._family.indices(vectors)

    def add(self, vectors: np.ndarray) -> np.ndarray:
        """Insert each row; returns the ``(n, K)`` indices that were bumped.

        Counters saturate instead of wrapping.  Duplicate rows within one
        batch accumulate correctly (via ``np.add.at``).
        """
        indices = self._family.indices(vectors)
        flat = indices.ravel()
        increments = np.zeros(self.num_counters, dtype=np.int64)
        np.add.at(increments, flat, 1)
        touched = increments > 0
        summed = self.counters.astype(np.int64)
        summed[touched] = np.minimum(
            summed[touched] + increments[touched], self.saturation
        )
        self.counters = summed.astype(np.uint16)
        self._inserted += vectors.shape[0]
        return indices

    def count(self, vectors: np.ndarray) -> np.ndarray:
        """Minimum-counter estimate of each row's insertion count."""
        indices = self._family.indices(vectors)
        return self.counters[indices].min(axis=1).astype(np.int64)

    def count_from_indices(self, indices: np.ndarray) -> np.ndarray:
        """Count estimate from precomputed ``(n, K)`` indices."""
        return self.counters[indices].min(axis=1).astype(np.int64)

    def contains(self, vectors: np.ndarray) -> np.ndarray:
        """Membership: every probed counter non-zero."""
        return self.count(vectors) > 0

    def is_saturated(self, vectors: np.ndarray) -> np.ndarray:
        """True where the count estimate has hit the saturation ceiling."""
        return self.count(vectors) >= self.saturation

    @property
    def fill_fraction(self) -> float:
        """Fraction of non-zero counters."""
        return float((self.counters > 0).mean())

    def storage_bits(self) -> int:
        """Logical footprint: ``bits_per_counter`` bits per counter."""
        return self.num_counters * self.bits_per_counter

    def storage_bytes(self) -> int:
        """Logical footprint in bytes (rounded up)."""
        return (self.storage_bits() + 7) // 8

    def packed_bytes(self) -> bytes:
        """Bit-packed counter array (``bits_per_counter`` bits each).

        This is the representation whose GZIP-compressed size the client
        downloads; Python keeps counters in uint16 for speed, but on the
        wire and on disk each occupies only ``bits_per_counter`` bits.
        """
        bits = np.unpackbits(
            self.counters.astype(">u2").view(np.uint8).reshape(-1, 2), axis=1
        )
        kept = bits[:, 16 - self.bits_per_counter :]
        return np.packbits(kept.ravel()).tobytes()

    @classmethod
    def from_packed_bytes(
        cls,
        payload: bytes,
        num_counters: int,
        num_hashes: int,
        bits_per_counter: int = 10,
        seed: int = 0,
    ) -> "CountingBloomFilter":
        """Rebuild a filter from :meth:`packed_bytes` output."""
        out = cls(
            num_counters=num_counters,
            num_hashes=num_hashes,
            bits_per_counter=bits_per_counter,
            seed=seed,
        )
        bits = np.unpackbits(np.frombuffer(payload, dtype=np.uint8))
        bits = bits[: num_counters * bits_per_counter].reshape(
            num_counters, bits_per_counter
        )
        weights = (1 << np.arange(bits_per_counter - 1, -1, -1)).astype(np.uint32)
        out.counters = (bits * weights).sum(axis=1).astype(np.uint16)
        return out
